package core

import (
	"context"
	"fmt"
	"sort"

	"hydrac/internal/rta"
	"hydrac/internal/task"
)

// Result is the outcome of period selection for one task set.
type Result struct {
	// Schedulable reports whether every security task admits a period
	// within [Rs, Tmax] (Algorithm 1, lines 2–4).
	Schedulable bool
	// Periods holds the selected period T*s per security task, in the
	// same order as the input set's Security slice. Nil when
	// unschedulable.
	Periods []task.Time
	// Resp holds the final WCRT per security task (same order),
	// computed with every selected period in place.
	Resp []task.Time
}

// Options tunes SelectPeriods. The zero value is the paper's
// configuration.
type Options struct {
	// CarryIn selects the Eq. 8 maximisation strategy.
	CarryIn CarryInMode
	// LinearSearch replaces Algorithm 2's logarithmic search with a
	// downward linear scan. Exponentially slower; kept for the
	// ablation benchmark and as a test oracle.
	LinearSearch bool
	// SkipOptimization pins every period at Tmax after the feasibility
	// check — the "w/o period optimisation" reference of Fig. 7b.
	SkipOptimization bool
	// AnalysisWorkers bounds the worker group the per-core Eq. 1 RTA
	// screen fans out over: the cores' verdicts are independent, so
	// they can be computed concurrently and merged in core order.
	// 0 or 1 runs the screen serially (byte-identical legacy
	// behaviour); any value yields bit-identical results by the same
	// ordered-merge argument as the sweep engine.
	AnalysisWorkers int
}

// setSchedulable dispatches the Eq. 1 screen serially or across the
// configured worker group.
func setSchedulable(ts *task.Set, workers int) bool {
	if workers <= 1 {
		return rta.SetSchedulable(ts)
	}
	return rta.SetSchedulableWorkers(ts, workers)
}

// SelectPeriods is Algorithm 1: given a task set whose RT tasks are
// already partitioned and schedulable, it chooses the minimum feasible
// period for every security task in priority order, so the security
// band executes as frequently as schedulability permits.
//
// The returned periods and response times follow the order of
// ts.Security. The input set is not modified.
func SelectPeriods(ts *task.Set, opt Options) (*Result, error) {
	return SelectPeriodsCtx(context.Background(), ts, opt)
}

// SelectPeriodsCtx is SelectPeriods with cancellation: the search is
// abandoned between priority levels and between binary-search probes
// when ctx is done, returning ctx.Err(). Analysis of a large set can
// take seconds; a service serving many clients needs to shed the work
// of a caller that hung up.
//
// The kernel workspace is borrowed from DefaultScratchPool for the
// duration of the call; services that thread their own scratch use
// SelectPeriodsCtxWith.
func SelectPeriodsCtx(ctx context.Context, ts *task.Set, opt Options) (*Result, error) {
	sc := DefaultScratchPool.Get(nil, SizeHint(ts))
	defer DefaultScratchPool.Put(sc)
	return SelectPeriodsCtxWith(ctx, ts, opt, sc)
}

// SelectPeriodsCtxWith is SelectPeriodsCtx on a caller-owned Scratch:
// identical results — a Reset re-primes every buffer — with zero
// steady-state allocations for callers that keep one workspace per
// worker (AnalyzeBatch, the sweep engine, the baselines). The scratch
// must not be shared across goroutines while the call runs, and the
// returned Result never aliases its buffers.
func SelectPeriodsCtxWith(ctx context.Context, ts *task.Set, opt Options, sc *Scratch) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	for _, t := range ts.RT {
		if t.Core < 0 {
			return nil, fmt.Errorf("RT task %s is not partitioned; run partition.Assign first", t.Name)
		}
	}
	if !setSchedulable(ts, opt.AnalysisWorkers) {
		return nil, fmt.Errorf("RT band is not schedulable under Eq. 1; HYDRA-C requires a feasible legacy system")
	}

	sys := NewSystem(ts)
	sec := ts.SecurityByPriority()
	n := len(sec)
	if n == 0 {
		return &Result{Schedulable: true, Periods: []task.Time{}, Resp: []task.Time{}}, nil
	}

	// One scratch serves the whole analysis: every probe below reuses
	// its buffers, so the search loops run allocation-free.
	sc.Reset(sys)
	sc.ensure(n)

	// Line 1: Ts := Tmax for every task, compute response times.
	periods := sc.periods[:0]
	for _, s := range sec {
		periods = append(periods, s.MaxPeriod)
	}
	sc.periods = periods
	resp := sc.responseTimes(sec, periods, opt.CarryIn, sc.resp)
	sc.resp = resp

	// Lines 2–4: if any task misses even at Tmax, the set is
	// unschedulable within the designer bounds.
	for i, s := range sec {
		if resp[i] > s.MaxPeriod {
			return &Result{Schedulable: false}, nil
		}
	}

	if !opt.SkipOptimization {
		// Lines 5–9: from highest to lowest priority, shrink each
		// period as far as every lower-priority task tolerates.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			lo, hi := resp[i], sec[i].MaxPeriod
			var star task.Time
			if opt.LinearSearch {
				star = linearMinPeriod(ctx, sc, sec, periods, resp, i, lo, hi, opt.CarryIn)
			} else {
				star = logMinPeriod(ctx, sc, sec, periods, resp, i, lo, hi, opt.CarryIn)
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			periods[i] = star
			// Line 8: refresh the WCRT of every lower-priority task
			// under the newly fixed period. The search's last feasible
			// probe is exactly the star (the binary search only
			// shrinks star on feasible probes), so its captured
			// response vector is that refresh, already computed.
			if sc.probeFrom == i && sc.probeCand == star {
				copy(resp[i+1:], sc.probeResp[i+1:len(sec)])
			} else {
				recomputeBelow(sc, sec, periods, resp, i, opt.CarryIn)
			}
		}
	}

	// Report in the original ts.Security order.
	outPeriods := make([]task.Time, n)
	outResp := make([]task.Time, n)
	byName := securityIndex(ts.Security)
	for i, s := range sec {
		j := byName[s.Name]
		outPeriods[j] = periods[i]
		outResp[j] = resp[i]
	}
	return &Result{Schedulable: true, Periods: outPeriods, Resp: outResp}, nil
}

// logMinPeriod is Algorithm 2: a logarithmic (binary) search over
// [lo, hi] for the smallest period of sec[i] that keeps every
// lower-priority security task schedulable (Rj ≤ Tmax_j). hi (= Tmax)
// is always feasible because Algorithm 1 verified it first, so the
// feasible set initialised with {Tmax} is never empty.
//
// The search probes lo before bisecting: lo = Rs is the least period
// any search could return, and on paper-scale workloads more than
// half of all searches end exactly there — one probe instead of
// log2(Tmax−Rs). When lo is infeasible the bisection proceeds on
// [lo+1, hi], which returns the identical star by the monotone-
// feasibility assumption Algorithm 2 itself rests on (the same
// argument as the resumable path's two-probe verification, pinned by
// the differential oracle corpus).
func logMinPeriod(ctx context.Context, sc *Scratch, sec []task.SecurityTask, periods, resp []task.Time, i int, lo, hi task.Time, mode CarryInMode) task.Time {
	if ctx.Err() != nil {
		return hi // the caller surfaces ctx.Err()
	}
	if lowerPrioritySchedulable(sc, sec, periods, resp, i, lo, mode) {
		return lo
	}
	lo++
	star := hi // T̂s initialised to {Tmax}; its minimum so far.
	for lo <= hi {
		if ctx.Err() != nil {
			return star // the caller surfaces ctx.Err()
		}
		mid := (lo + hi) / 2
		if lowerPrioritySchedulable(sc, sec, periods, resp, i, mid, mode) {
			if mid < star {
				star = mid
			}
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return star
}

// linearMinPeriod scans downward from hi; it is the brute-force oracle
// for Algorithm 2 and the ablation benchmark.
func linearMinPeriod(ctx context.Context, sc *Scratch, sec []task.SecurityTask, periods, resp []task.Time, i int, lo, hi task.Time, mode CarryInMode) task.Time {
	star := hi
	for t := hi; t >= lo; t-- {
		if ctx.Err() != nil {
			return star // the caller surfaces ctx.Err()
		}
		if !lowerPrioritySchedulable(sc, sec, periods, resp, i, t, mode) {
			break
		}
		star = t
	}
	return star
}

// lowerPrioritySchedulable checks Algorithm 2 line 5: with sec[i]'s
// period set to cand (and every unprocessed task still at Tmax), does
// every lower-priority security task keep Rj ≤ Tmax_j? Response times
// are recomputed top-down from task i+1 because carry-in bounds of
// deeper tasks depend on the response times above them. The probe
// runs allocation-free on the scratch and restores periods[i]
// directly on every exit path (a deferred restore would cost a
// closure per probe of the binary search).
func lowerPrioritySchedulable(sc *Scratch, sec []task.SecurityTask, periods, resp []task.Time, i int, cand task.Time, mode CarryInMode) bool {
	saved := periods[i]
	periods[i] = cand

	hp := sc.hp[:0]
	for k := 0; k <= i; k++ {
		hp = append(hp, Interferer{WCET: sec[k].WCET, Period: periods[k], Resp: resp[k]})
	}
	ok := true
	for j := i + 1; j < len(sec); j++ {
		r, fine := sc.MigratingWCRT(sec[j].WCET, hp, sec[j].MaxPeriod, mode)
		if !fine || r > sec[j].MaxPeriod {
			ok = false
			break
		}
		sc.probeResp[j] = r
		hp = append(hp, Interferer{WCET: sec[j].WCET, Period: periods[j], Resp: r})
	}
	sc.hp = hp[:0]
	periods[i] = saved
	if ok {
		// Remember the full response vector of this feasible probe:
		// when the search settles on this candidate, the line-8
		// refresh can reuse it verbatim (same inputs, same fixpoints).
		sc.probeFrom, sc.probeCand = i, cand
	} else {
		sc.probeFrom = -1
	}
	return ok
}

// recomputeBelow refreshes resp[i+1:] after periods[i] was fixed
// (Algorithm 1 line 8). resp[i] itself depends only on tasks above i
// and is already final.
func recomputeBelow(sc *Scratch, sec []task.SecurityTask, periods, resp []task.Time, i int, mode CarryInMode) {
	hp := sc.hp[:0]
	for k := 0; k <= i; k++ {
		hp = append(hp, Interferer{WCET: sec[k].WCET, Period: periods[k], Resp: resp[k]})
	}
	for j := i + 1; j < len(sec); j++ {
		r, ok := sc.MigratingWCRT(sec[j].WCET, hp, sec[j].MaxPeriod, mode)
		if !ok {
			r = task.Infinity
		}
		resp[j] = r
		hp = append(hp, Interferer{WCET: sec[j].WCET, Period: periods[j], Resp: r})
	}
	sc.hp = hp[:0]
}

func indexByName(sec []task.SecurityTask, name string) int {
	for i, s := range sec {
		if s.Name == name {
			return i
		}
	}
	return -1
}

// securityIndex maps each security-task name to its index in sec,
// first occurrence winning — the same resolution rule as indexByName,
// built once instead of rescanned per task (the remap at the end of a
// selection was O(n²)).
func securityIndex(sec []task.SecurityTask) map[string]int {
	idx := make(map[string]int, len(sec))
	for i, s := range sec {
		if _, ok := idx[s.Name]; !ok {
			idx[s.Name] = i
		}
	}
	return idx
}

// Apply writes the selected periods into a clone of ts and returns it;
// convenient for feeding the simulator. It panics if res is not
// schedulable.
func Apply(ts *task.Set, res *Result) *task.Set {
	if !res.Schedulable {
		panic("core.Apply: result is not schedulable")
	}
	cp := ts.Clone()
	for i := range cp.Security {
		cp.Security[i].Period = res.Periods[i]
		cp.Security[i].Core = -1
	}
	return cp
}

// SortSecurityByPriority is a small helper for callers that need the
// priority order index mapping used by Result fields.
func SortSecurityByPriority(sec []task.SecurityTask) []task.SecurityTask {
	out := append([]task.SecurityTask(nil), sec...)
	sort.Slice(out, func(i, j int) bool { return out[i].Priority < out[j].Priority })
	return out
}
