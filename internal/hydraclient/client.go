// Package hydraclient is a minimal retrying HTTP client for hydrad
// traffic. It exists because a robust daemon that sheds load with 429
// is only half of the overload story — the other half is a client
// that backs off instead of hammering. The policy is deliberately
// boring: capped exponential backoff with jitter, the server's
// Retry-After honoured (but capped, so a hostile or confused header
// cannot stall the caller), every wait bounded by the caller's
// context, and only transport failures and retryable statuses
// (429 and 5xx) retried — a 4xx is the caller's bug and retrying it
// would just be load.
package hydraclient

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Defaults for Config zero values.
const (
	DefaultMaxRetries = 3
	DefaultBaseDelay  = 10 * time.Millisecond
	DefaultMaxDelay   = 1 * time.Second
	DefaultMaxHops    = 3
)

// Config shapes a Client. The zero value is usable: http.DefaultClient,
// DefaultMaxRetries attempts, Default{Base,Max}Delay backoff.
type Config struct {
	// Client is the underlying HTTP client; nil uses http.DefaultClient.
	Client *http.Client
	// MaxRetries is the retry budget beyond the first attempt;
	// negative disables retries, 0 means DefaultMaxRetries.
	MaxRetries int
	// BaseDelay is the first backoff step (doubles per retry).
	BaseDelay time.Duration
	// MaxDelay caps both the backoff growth and any server-sent
	// Retry-After.
	MaxDelay time.Duration
	// Seed makes the jitter deterministic for tests; 0 seeds from the
	// clock.
	Seed int64
	// MaxHops bounds how many 307/308 redirects one logical request
	// follows (a fleet hydrad answers 307 + X-Hydra-Owner for sessions
	// another node owns); negative disables following, 0 means
	// DefaultMaxHops. Hops replay the body and consume neither the
	// retry budget nor a backoff wait.
	MaxHops int
}

// Client retries idempotent hydrad requests with backoff. Safe for
// concurrent use.
type Client struct {
	hc         *http.Client
	maxRetries int
	maxHops    int
	base, max  time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds a Client from cfg.
func New(cfg Config) *Client {
	c := &Client{
		hc:         cfg.Client,
		maxRetries: cfg.MaxRetries,
		maxHops:    cfg.MaxHops,
		base:       cfg.BaseDelay,
		max:        cfg.MaxDelay,
	}
	if c.hc == nil {
		c.hc = http.DefaultClient
	}
	// Redirects are followed here, not inside net/http: the stdlib
	// follow is invisible (no count, no cap of our choosing) and it
	// would race this client's X-Hydra-Owner fallback. Copy the client
	// rather than mutate the caller's.
	hc := *c.hc
	hc.CheckRedirect = func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}
	c.hc = &hc
	switch {
	case c.maxRetries < 0:
		c.maxRetries = 0
	case c.maxRetries == 0:
		c.maxRetries = DefaultMaxRetries
	}
	switch {
	case c.maxHops < 0:
		c.maxHops = 0
	case c.maxHops == 0:
		c.maxHops = DefaultMaxHops
	}
	if c.base <= 0 {
		c.base = DefaultBaseDelay
	}
	if c.max <= 0 {
		c.max = DefaultMaxDelay
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	c.rng = rand.New(rand.NewSource(seed))
	return c
}

// Retryable reports whether an HTTP status merits a retry: 429 (the
// server shed us and told us to come back) and the 5xx family (the
// server, not the request, was the problem), except 501 — a missing
// implementation will still be missing on the next attempt.
func Retryable(status int) bool {
	if status == http.StatusTooManyRequests {
		return true
	}
	return status >= 500 && status != http.StatusNotImplemented
}

// Do issues one logical request, retrying transport errors and
// retryable statuses within the retry budget. The response body is
// always fully drained and closed (keeping the underlying connection
// reusable). It returns the final attempt's status: a nil error with
// a non-200 status means the server answered and either the status
// was not retryable or the budget ran out. A non-nil error is a
// transport failure or an expired context.
func (c *Client) Do(ctx context.Context, method, url, contentType string, body []byte) (int, error) {
	status, _, err := c.DoCount(ctx, method, url, contentType, body)
	return status, err
}

// DoCount is Do, also reporting how many redirect hops the request
// followed. A 307/308 with a usable target is re-issued against the
// new location (body replayed, method preserved) up to MaxHops times;
// hops consume neither the retry budget nor a backoff wait, since a
// redirect is the fleet routing the request, not the service failing.
// A redirect past the hop cap, or without a usable target, comes back
// as the redirect status itself.
func (c *Client) DoCount(ctx context.Context, method, url, contentType string, body []byte) (status, redirects int, err error) {
	attempt := 0
	for {
		var retryAfter time.Duration
		var next string
		status, retryAfter, next, err = c.once(ctx, method, url, contentType, body)
		if err == nil && next != "" && redirects < c.maxHops {
			redirects++
			url = next
			continue
		}
		if err == nil && !Retryable(status) {
			return status, redirects, nil
		}
		if ctx.Err() != nil {
			return status, redirects, ctx.Err()
		}
		if attempt >= c.maxRetries {
			return status, redirects, err
		}
		select {
		case <-time.After(c.backoff(attempt, retryAfter)):
		case <-ctx.Done():
			return status, redirects, ctx.Err()
		}
		attempt++
	}
}

func (c *Client) once(ctx context.Context, method, url, contentType string, body []byte) (status int, retryAfter time.Duration, redirect string, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, 0, "", err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, 0, "", err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, perr := strconv.Atoi(ra); perr == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	if resp.StatusCode == http.StatusTemporaryRedirect || resp.StatusCode == http.StatusPermanentRedirect {
		redirect = redirectTarget(req, resp)
	}
	return resp.StatusCode, retryAfter, redirect, nil
}

// redirectTarget resolves where a 307/308 points: Location when set,
// else X-Hydra-Owner (a base URL) joined with the request path —
// hydrad sends both, but the owner header alone suffices. Empty when
// neither yields a usable absolute target.
func redirectTarget(req *http.Request, resp *http.Response) string {
	loc := resp.Header.Get("Location")
	if loc == "" {
		if owner := resp.Header.Get("X-Hydra-Owner"); owner != "" {
			loc = owner + req.URL.RequestURI()
		}
	}
	if loc == "" {
		return ""
	}
	u, err := req.URL.Parse(loc)
	if err != nil {
		return ""
	}
	return u.String()
}

// backoff picks the next wait: the server's Retry-After when sent
// (capped at MaxDelay), otherwise equal-jittered exponential backoff —
// uniformly drawn from [d/2, d] where d doubles per attempt up to
// MaxDelay, so synchronized clients de-synchronize instead of
// re-arriving as one thundering herd.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		if retryAfter > c.max {
			retryAfter = c.max
		}
		return retryAfter
	}
	d := c.base
	for i := 0; i < attempt && d < c.max; i++ {
		d *= 2
	}
	if d > c.max {
		d = c.max
	}
	c.mu.Lock()
	jittered := d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.mu.Unlock()
	return jittered
}
