package rover

import (
	"math/rand"
	"strings"
	"testing"

	"hydrac/internal/rta"
)

func TestTaskSetMatchesPaper(t *testing.T) {
	ts := TaskSet()
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	if ts.Cores != 2 {
		t.Errorf("cores = %d, want 2", ts.Cores)
	}
	u := ts.RTUtilization()
	if u < 0.7039 || u > 0.7041 {
		t.Errorf("RT utilisation %.4f, want 0.7040 (paper §5.1.2)", u)
	}
	total := ts.MinUtilization()
	if total < 1.26 || total > 1.261 {
		t.Errorf("total minimum utilisation %.4f, want ≈ 1.2605", total)
	}
	if !rta.SetSchedulable(ts) {
		t.Error("rover RT band must be schedulable")
	}
}

func TestCycles(t *testing.T) {
	if got := Cycles(1); got != 700_000 {
		t.Errorf("Cycles(1 ms) = %v, want 700000 (700 MHz)", got)
	}
	if got := Cycles(1000); got != 7e8 {
		t.Errorf("Cycles(1 s) = %v, want 7e8", got)
	}
}

func TestTableTwoMentionsKeyRows(t *testing.T) {
	tbl := TableTwo()
	for _, want := range []string{"700 MHz", "navigation", "tripwire", "45000 ms"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, tbl)
		}
	}
}

func TestWorldNavigation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := NewWorld(rng, 20, 20, 0.15)
	for i := 0; i < 200; i++ {
		w.NavigationStep()
		if w.X < 0 || w.Y < 0 || w.X >= w.W || w.Y >= w.H {
			t.Fatalf("rover left the arena: (%d,%d)", w.X, w.Y)
		}
	}
	if w.Moves == 0 {
		t.Error("rover never moved in a 15 percent density arena")
	}
	frame := w.CaptureFrame()
	if len(frame) != 64 {
		t.Errorf("frame size %d, want 64", len(frame))
	}
	if r := w.Render(); !strings.Contains(r, "R") {
		t.Error("render lacks the rover marker")
	}
}

func TestWorldBoxedIn(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	w := NewWorld(rng, 3, 3, 0)
	// Wall the rover in manually.
	for _, d := range [][2]int{{1, 0}, {0, 1}, {-1, 0}, {0, -1}} {
		w.obstacles[[2]int{w.X + d[0], w.Y + d[1]}] = true
	}
	x, y := w.X, w.Y
	w.NavigationStep()
	if w.X != x || w.Y != y {
		t.Error("boxed-in rover moved")
	}
}

func TestRunTrialsInvariants(t *testing.T) {
	cfg := DefaultTrialConfig()
	cfg.Trials = 8 // keep the test quick; the bench runs the full 35
	hydraC, hydra, err := RunTrials(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hydraC.Undetected != 0 || hydra.Undetected != 0 {
		t.Fatalf("undetected attacks: HYDRA-C %d, HYDRA %d", hydraC.Undetected, hydra.Undetected)
	}
	if hydraC.DetectionMS.N() != 16 || hydra.DetectionMS.N() != 16 {
		t.Fatalf("sample sizes: %d vs %d, want 16 each", hydraC.DetectionMS.N(), hydra.DetectionMS.N())
	}
	// Tripwire ends up with the same analytic minimum under both
	// pipelines on this task set (the per-core and migrating bounds
	// coincide at 7582 ms); kmodcheck differs.
	if hydraC.TripwirePeriod != 7582 || hydra.TripwirePeriod != 7582 {
		t.Errorf("tripwire periods: HYDRA-C %d, HYDRA %d, want 7582 (analysis regression)",
			hydraC.TripwirePeriod, hydra.TripwirePeriod)
	}
	if hydra.KmodPeriod != 463 {
		t.Errorf("HYDRA kmod period %d, want 463 (WCRT on the navigation core)", hydra.KmodPeriod)
	}
	if hydraC.KmodPeriod != 2783 {
		t.Errorf("HYDRA-C kmod period %d, want 2783 (Eq. 7 fixed point under tripwire interference)",
			hydraC.KmodPeriod)
	}
	// Detection latency is period-dominated; with the above periods the
	// two pipelines land within 2x of each other, and both detect every
	// attack well before the next Tmax window.
	ratio := hydraC.DetectionMS.Mean() / hydra.DetectionMS.Mean()
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("detection ratio %.2f wildly off: HYDRA-C %.0f ms, HYDRA %.0f ms",
			ratio, hydraC.DetectionMS.Mean(), hydra.DetectionMS.Mean())
	}
	if hydraC.MeanDetectionCycles() <= 0 {
		t.Error("cycle conversion must be positive")
	}
}

// The controlled comparison isolates the migration mechanism: same
// periods, pinned vs migrating scheduler. The paper's Fig. 5b shape —
// more context switches under migration — must hold; detection stays
// period-dominated and therefore close.
func TestRunControlledShapes(t *testing.T) {
	cfg := DefaultTrialConfig()
	cfg.Trials = 8
	migrating, pinned, err := RunControlled(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if migrating.TripwirePeriod != pinned.TripwirePeriod || migrating.KmodPeriod != pinned.KmodPeriod {
		t.Fatal("controlled comparison must use identical periods")
	}
	if migrating.ContextSwitches.Mean() <= pinned.ContextSwitches.Mean() {
		t.Errorf("context switches: migrating %.0f !> pinned %.0f (Fig. 5b shape)",
			migrating.ContextSwitches.Mean(), pinned.ContextSwitches.Mean())
	}
	if migrating.Undetected != 0 || pinned.Undetected != 0 {
		t.Fatalf("undetected attacks: %d / %d", migrating.Undetected, pinned.Undetected)
	}
	ratio := migrating.DetectionMS.Mean() / pinned.DetectionMS.Mean()
	if ratio < 0.7 || ratio > 1.3 {
		t.Errorf("controlled detection ratio %.2f outside parity band", ratio)
	}
}

func TestRunMissionEndToEnd(t *testing.T) {
	cfg := DefaultMissionConfig()
	cfg.Horizon = 60000
	rep, err := RunMission(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RTDeadlineMisses != 0 {
		t.Fatalf("RT misses: %d", rep.RTDeadlineMisses)
	}
	if rep.Moves == 0 || rep.Frames == 0 {
		t.Fatalf("mission inert: %d moves, %d frames", rep.Moves, rep.Frames)
	}
	if rep.TamperDetectedAt <= rep.TamperAt {
		t.Fatalf("tamper detection at %d not after attack %d", rep.TamperDetectedAt, rep.TamperAt)
	}
	if rep.RootkitDetectedAt <= rep.RootkitAt {
		t.Fatalf("rootkit detection at %d not after attack %d", rep.RootkitDetectedAt, rep.RootkitAt)
	}
	if rep.Migrations == 0 {
		t.Error("semi-partitioned mission never migrated")
	}
	if rep.TamperedFrame == "" {
		t.Error("tampered frame unnamed")
	}
}

func TestRunMissionDeterministicPerSeed(t *testing.T) {
	cfg := DefaultMissionConfig()
	cfg.Horizon = 45000
	a, err := RunMission(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMission(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}
