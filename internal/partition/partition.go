// Package partition implements the bin-packing heuristics the paper
// uses to place RT tasks on cores ("assigned to the cores using a
// standard task partitioning algorithm", §2.1; best-fit in the
// synthetic evaluation, Table 3). Admission on a core is the exact
// uniprocessor RTA test of Eq. 1, not a utilisation bound, so a task
// is placed only where it and the tasks already placed remain
// schedulable.
package partition

import (
	"context"
	"fmt"
	"sort"

	"hydrac/internal/rta"
	"hydrac/internal/task"
)

// Heuristic selects among the feasible cores for a task.
type Heuristic int

const (
	// BestFit picks the feasible core with the least remaining
	// utilisation capacity (the paper's default).
	BestFit Heuristic = iota
	// FirstFit picks the lowest-indexed feasible core.
	FirstFit
	// WorstFit picks the feasible core with the most remaining
	// utilisation capacity.
	WorstFit
	// NextFit rotates through cores, continuing from the last
	// placement.
	NextFit
)

// String returns the conventional name of the heuristic.
func (h Heuristic) String() string {
	switch h {
	case BestFit:
		return "best-fit"
	case FirstFit:
		return "first-fit"
	case WorstFit:
		return "worst-fit"
	case NextFit:
		return "next-fit"
	default:
		return fmt.Sprintf("heuristic(%d)", int(h))
	}
}

// ErrInfeasible reports the first task that could not be placed.
type ErrInfeasible struct{ Task string }

func (e ErrInfeasible) Error() string {
	return fmt.Sprintf("partitioning: no feasible core for task %s", e.Task)
}

// Assign partitions ts.RT onto ts.Cores cores in place using h.
// Tasks are considered in decreasing-utilisation order (the standard
// ordering for partitioned RM bin packing); each candidate placement
// is admitted with the exact RTA test. On success every task's Core
// field is set; on failure the set is left unmodified and an
// ErrInfeasible is returned.
func Assign(ts *task.Set, h Heuristic) error {
	return AssignCtx(context.Background(), ts, h)
}

// AssignCtx is Assign with cancellation: placement is abandoned
// between tasks when ctx is done, returning ctx.Err() with the set
// unmodified.
func AssignCtx(ctx context.Context, ts *task.Set, h Heuristic) error {
	if err := ts.Validate(); err != nil {
		return err
	}
	order := make([]int, len(ts.RT))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ua, ub := ts.RT[order[a]].Utilization(), ts.RT[order[b]].Utilization()
		if ua != ub {
			return ua > ub
		}
		return ts.RT[order[a]].Name < ts.RT[order[b]].Name
	})

	cores := make([][]task.RTTask, ts.Cores)
	util := make([]float64, ts.Cores)
	assigned := make([]int, len(ts.RT))
	last := 0 // next-fit cursor

	for _, i := range order {
		if err := ctx.Err(); err != nil {
			return err
		}
		t := ts.RT[i]
		best := -1
		var bestKey float64
		try := func(m int) {
			if !fits(cores[m], t) {
				return
			}
			switch h {
			case FirstFit:
				if best == -1 {
					best = m
				}
			case BestFit:
				// least remaining capacity = highest utilisation.
				if best == -1 || util[m] > bestKey {
					best, bestKey = m, util[m]
				}
			case WorstFit:
				if best == -1 || util[m] < bestKey {
					best, bestKey = m, util[m]
				}
			case NextFit:
				if best == -1 {
					best = m
				}
			}
		}
		if h == NextFit {
			for k := 0; k < ts.Cores && best == -1; k++ {
				try((last + k) % ts.Cores)
			}
			if best != -1 {
				last = best
			}
		} else {
			for m := 0; m < ts.Cores; m++ {
				try(m)
			}
		}
		if best == -1 {
			return ErrInfeasible{Task: t.Name}
		}
		t.Core = best
		cores[best] = insertByPriority(cores[best], t)
		util[best] += t.Utilization()
		assigned[i] = best
	}
	for i := range ts.RT {
		ts.RT[i].Core = assigned[i]
	}
	return nil
}

// fits reports whether adding t to the core keeps every task on the
// core schedulable under Eq. 1.
func fits(core []task.RTTask, t task.RTTask) bool {
	cand := insertByPriority(append([]task.RTTask(nil), core...), t)
	return rta.CoreSchedulable(cand)
}

// insertByPriority inserts t keeping the slice sorted by priority
// (highest, i.e. smallest value, first).
func insertByPriority(core []task.RTTask, t task.RTTask) []task.RTTask {
	i := sort.Search(len(core), func(i int) bool { return core[i].Priority > t.Priority })
	core = append(core, task.RTTask{})
	copy(core[i+1:], core[i:])
	core[i] = t
	return core
}
