package task

// Hyperperiod utilities: simulation horizons and schedule-repetition
// reasoning need the least common multiple of the task periods, with
// explicit saturation instead of silent overflow (generated log-
// uniform periods produce astronomically large LCMs).

// GCD returns the greatest common divisor of two positive times.
func GCD(a, b Time) Time {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of a and b, or Infinity on
// overflow.
func LCM(a, b Time) Time {
	if a <= 0 || b <= 0 {
		return 0
	}
	g := GCD(a, b)
	q := a / g
	if q > Infinity/b {
		return Infinity
	}
	return q * b
}

// Hyperperiod returns the LCM of every period in the set (RT and
// security, using assigned security periods and falling back to Tmax
// for unassigned ones), saturating at Infinity. A Set with no tasks
// has hyperperiod 0.
func (ts *Set) Hyperperiod() Time {
	var h Time
	fold := func(p Time) {
		if h == 0 {
			h = p
			return
		}
		h = LCM(h, p)
	}
	for _, t := range ts.RT {
		fold(t.Period)
	}
	for _, s := range ts.Security {
		if s.Period > 0 {
			fold(s.Period)
		} else {
			fold(s.MaxPeriod)
		}
	}
	return h
}

// SimulationHorizon returns a practical simulation length: the full
// hyperperiod when it is at most cap, otherwise `cycles` times the
// longest period (a standard heuristic when the hyperperiod is
// astronomically large).
func (ts *Set) SimulationHorizon(cap Time, cycles int) Time {
	if h := ts.Hyperperiod(); h > 0 && h <= cap {
		return h
	}
	var longest Time
	for _, t := range ts.RT {
		if t.Period > longest {
			longest = t.Period
		}
	}
	for _, s := range ts.Security {
		p := s.Period
		if p == 0 {
			p = s.MaxPeriod
		}
		if p > longest {
			longest = p
		}
	}
	h := longest * Time(cycles)
	if h > cap {
		h = cap
	}
	return h
}
