package core

import (
	"context"
	"fmt"

	"hydrac/internal/task"
)

// Hints carries state from a previous period-selection run so a
// near-identical set — the common case for a live admission session,
// where successive requests differ by one or two tasks — can be
// re-analysed in O(verification) instead of O(search).
//
// Hints never change the result. The previous period of a task is
// used only as a candidate: it is kept iff the analysis proves, in the
// NEW set's context, that it is exactly the value Algorithm 2's search
// would return (feasible, and either at the lower bound or with an
// infeasible predecessor — the definition of the least feasible
// period under the monotone-feasibility assumption the binary search
// itself rests on). A candidate that fails verification falls back to
// the full search for that task; a missing candidate always searches.
type Hints struct {
	// Periods maps security-task name → previously selected period.
	Periods map[string]task.Time
	// RTVerified tells the selector the caller has already established
	// RT-band feasibility (Eq. 1 on every core) for this exact set, so
	// the per-core RTA screen can be skipped. The incremental engine
	// sets it after its memoized per-core check.
	RTVerified bool
	// Prior, when set, is the exact output of a previous SCHEDULABLE
	// selection the caller certifies (see Prior). Unlike Periods, which
	// is advisory (verified per task, never trusted), Prior is a trust
	// declaration in the RTVerified mold: the selector adopts the
	// longest provably-unaffected priority prefix of the previous
	// result without re-verifying it, which is what makes a small delta
	// cost o(n) instead of O(n²) probe work. A caller that cannot meet
	// Prior's contract must leave it nil.
	Prior *Prior
}

// Prior is the previous selection's result in priority order, plus the
// implicit certification that lets the resumable path adopt its
// unchanged prefix outright. Supplying it asserts all of:
//
//   - Sec/Periods/Resp are the bit-exact output of a SelectPeriods*
//     run that returned Schedulable == true, with Sec in the
//     SecurityByPriority order of that run's set and Periods/Resp
//     aligned to it;
//   - that run analysed a set whose RT band — members, parameters and
//     core placement — is identical to the current set's;
//   - that run used the same Options (CarryIn mode in particular).
//
// Under that contract the adopted result is bit-identical to a cold
// run; see adoptablePrefix for the argument. The admission engine is
// the intended caller: it certifies its own committed output.
type Prior struct {
	// Sec is the previous set's security band in priority order.
	Sec []task.SecurityTask
	// Periods and Resp are the previous result per level of Sec.
	Periods, Resp []task.Time
}

// ResumeStats reports how much prior state a resumable selection
// reused; tests and the admission engine's metrics read it.
type ResumeStats struct {
	// Verified counts tasks whose hinted period was proven minimal
	// with at most two feasibility probes.
	Verified int
	// Searched counts tasks that ran the full Algorithm 2 search.
	Searched int
	// Adopted counts the leading priority levels taken verbatim from
	// Hints.Prior without any probing (the trusted-prefix fast path).
	Adopted int
}

// SelectPeriodsResumable is SelectPeriodsCtx with warm-start hints:
// identical results, bit for bit, with most of the per-task period
// searches replaced by two-probe verifications when the hints match.
//
// It also reuses the response-time state Algorithm 1 threads through
// its loop instead of recomputing every lower task after each fix
// (line 8): a task's final WCRT depends only on the finalized periods
// and response times ABOVE it, so resp[i] is computed once, right
// before task i's own search, from the already-final prefix. This is
// the same least fixed point recomputeBelow arrives at — recomputeBelow
// just recomputes it (n−i) times more often — and the differential
// oracle corpus (internal/oracle) pins the equivalence.
func SelectPeriodsResumable(ctx context.Context, ts *task.Set, opt Options, hints *Hints) (*Result, *ResumeStats, error) {
	sc := DefaultScratchPool.Get(nil, SizeHint(ts))
	defer DefaultScratchPool.Put(sc)
	return SelectPeriodsResumableWith(ctx, ts, opt, hints, sc)
}

// SelectPeriodsResumableWith is SelectPeriodsResumable with a
// caller-owned Scratch: a long-lived owner (the admission engine)
// re-primes one workspace per analysis instead of reallocating the
// kernel buffers on every delta. The scratch must not be shared
// across goroutines; results are identical to the scratch-free form.
func SelectPeriodsResumableWith(ctx context.Context, ts *task.Set, opt Options, hints *Hints, sc *Scratch) (*Result, *ResumeStats, error) {
	stats := &ResumeStats{}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if err := ts.Validate(); err != nil {
		return nil, nil, err
	}
	for _, t := range ts.RT {
		if t.Core < 0 {
			return nil, nil, fmt.Errorf("RT task %s is not partitioned; run partition.Assign first", t.Name)
		}
	}
	if hints == nil {
		hints = &Hints{}
	}
	if !hints.RTVerified && !setSchedulable(ts, opt.AnalysisWorkers) {
		return nil, nil, fmt.Errorf("RT band is not schedulable under Eq. 1; HYDRA-C requires a feasible legacy system")
	}

	sys := NewSystem(ts)
	sec := ts.SecurityByPriority()
	n := len(sec)
	if n == 0 {
		return &Result{Schedulable: true, Periods: []task.Time{}, Resp: []task.Time{}}, stats, nil
	}

	sc.Reset(sys)
	sc.ensure(n)

	// Line 1: every period at Tmax.
	periods := sc.periods[:0]
	for _, s := range sec {
		periods = append(periods, s.MaxPeriod)
	}
	sc.periods = periods

	// Trusted-prefix fast path: when the caller certifies the previous
	// run's output (Hints.Prior) and the leading priority levels are
	// provably unaffected by the delta, adopt their periods and
	// response times outright and start the real work at the first
	// changed level. This is what makes a tail-local delta on a
	// thousand-task band cost o(n) instead of O(n²) probe work.
	adopt := 0
	if pr := hints.Prior; pr != nil && !opt.SkipOptimization && opt.CarryIn == Dominance {
		adopt = adoptablePrefix(sc, sec, pr)
	}
	stats.Adopted = adopt

	var resp []task.Time
	if adopt > 0 {
		pr := hints.Prior
		resp = sc.resp[:0]
		for i := 0; i < adopt; i++ {
			periods[i] = pr.Periods[i]
			resp = append(resp, pr.Resp[i])
		}
		resp = resp[:n]
		sc.resp = resp
		// Lines 2–4, prefix-adopted form: the all-Tmax screen reduces
		// to the suffix under the chain (prefix final, suffix Tmax).
		// Equivalence: a prefix task's Tmax-feasibility depends only on
		// the (identical) levels above it, so it cannot have changed;
		// a suffix task infeasible at all-Tmax is infeasible under the
		// tighter adopted chain too (periods only shrank); and a suffix
		// task feasible at all-Tmax is feasible under the adopted chain,
		// because the cold run would fix the same prefix (adoption's own
		// guarantee) while its searches maintain exactly that
		// feasibility invariant. The computed values are also the resp
		// state the cold loop would hold when reaching level `adopt`.
		suffixRespAtTmax(sc, sec, periods, resp, adopt, opt.CarryIn)
		for i := adopt; i < n; i++ {
			if resp[i] > sec[i].MaxPeriod {
				return &Result{Schedulable: false}, stats, nil
			}
		}
	} else {
		// Lines 2–4: if any task misses even at Tmax, the set is
		// unschedulable within the designer bounds.
		resp = sc.responseTimes(sec, periods, opt.CarryIn, sc.resp)
		sc.resp = resp
		for i, s := range sec {
			if resp[i] > s.MaxPeriod {
				return &Result{Schedulable: false}, stats, nil
			}
		}
	}

	if !opt.SkipOptimization {
		// Lines 5–9, resumable form. hp accumulates the finalized
		// interferer prefix (on its own buffer — the probe helpers
		// below reuse sc.hp); resp[i] is recomputed from it once per
		// task (it cannot depend on the unfixed periods below, nor on
		// the task's own period).
		hp := sc.hpOuter[:0]
		for k := 0; k < adopt; k++ {
			hp = append(hp, Interferer{WCET: sec[k].WCET, Period: periods[k], Resp: resp[k]})
		}
		for i := adopt; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			if i > 0 {
				cs, limit := sec[i].WCET, sec[i].MaxPeriod
				var r, rt, nc, ck task.Time
				var ok bool
				if opt.CarryIn == Dominance && cs <= limit && limit-cs < MaxFixpointIterations {
					// The incremental shiftFix calls below keep the
					// component caches coherent with the stored chain
					// (empty chg: no perturbation beyond what they
					// folded in), so the common unmoved task resolves
					// by the bound layer alone and the rest by a
					// warm-started fixpoint.
					sc.chg, sc.chgWild = sc.chg[:0], false
					r, rt, nc, ck, ok = warmResp(sc, i, cs, limit, resp[i], hp)
				} else {
					r, ok = sc.MigratingWCRT(cs, hp, limit, opt.CarryIn)
					rt = -1
				}
				if !ok {
					// Cannot happen: the task was feasible at Tmax and
					// the prefix only shrank periods the feasibility
					// checks already accounted for; recompute keeps
					// the slice consistent regardless.
					r = task.Infinity
					rt = -1
				}
				if old := resp[i]; r != old {
					// The top-k bounds cached below were computed with
					// this response in the chain; lift them by the
					// Lipschitz correction (an unbounded r fails the
					// sanity check and invalidates instead).
					sc.shiftFix(sec, resp, i+1, chainDelta{c: cs, oldP: periods[i], newP: periods[i], oldR: old, newR: r})
				}
				resp[i] = r
				sc.rtAt[i], sc.ncAt[i], sc.ckAt[i] = rt, nc, ck
			}
			lo, hi := resp[i], sec[i].MaxPeriod
			star := task.Time(-1)
			if cand, ok := hints.Periods[sec[i].Name]; ok && cand >= lo && cand <= hi {
				if lowerPrioritySchedulable(sc, sec, periods, resp, i, cand, opt.CarryIn) &&
					(cand == lo || !lowerPrioritySchedulable(sc, sec, periods, resp, i, cand-1, opt.CarryIn)) {
					star = cand
					stats.Verified++
				}
			}
			if star < 0 {
				if opt.LinearSearch {
					star = linearMinPeriod(ctx, sc, sec, periods, resp, i, lo, hi, opt.CarryIn)
				} else {
					star = logMinPeriod(ctx, sc, sec, periods, resp, i, lo, hi, opt.CarryIn)
				}
				stats.Searched++
			}
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			periods[i] = star
			if sc.probeFrom == i && sc.probeCand == star {
				// Line-8 capture, as in the non-resumable path: the
				// search's last feasible probe was exactly the star, so
				// its captured response vector and component caches ARE
				// the post-fix state. Folding them in keeps every lower
				// task's warm start near its final value — without this
				// the cold searches below re-climb each fixpoint from
				// the Tmax-era responses on every probe, which is what
				// made large-n session bring-up superlinear.
				copy(resp[i+1:], sc.probeResp[i+1:n])
				copy(sc.rtAt[i+1:], sc.probeRT[i+1:n])
				copy(sc.ncAt[i+1:], sc.probeNC[i+1:n])
				copy(sc.ckAt[i+1:], sc.probeCK[i+1:n])
			} else if star != sec[i].MaxPeriod {
				// The caches below were computed with this task still
				// at Tmax; fold the period change in (exact for the
				// non-carry-in sums, Lipschitz bound for top-k) so
				// they describe the post-fix chain.
				sc.shiftFix(sec, resp, i+1, chainDelta{c: sec[i].WCET, oldP: sec[i].MaxPeriod, newP: star, oldR: resp[i], newR: resp[i]})
			}
			hp = append(hp, Interferer{WCET: sec[i].WCET, Period: periods[i], Resp: resp[i]})
		}
		sc.hpOuter = hp[:0]
	}

	// Report in the original ts.Security order.
	outPeriods := make([]task.Time, n)
	outResp := make([]task.Time, n)
	byName := securityIndex(ts.Security)
	for i, s := range sec {
		j := byName[s.Name]
		outPeriods[j] = periods[i]
		outResp[j] = resp[i]
	}
	return &Result{Schedulable: true, Periods: outPeriods, Resp: outResp}, stats, nil
}

// adoptablePrefix returns the number of leading priority levels of sec
// whose previous results (pr) can be adopted without re-verification,
// or 0 when no level qualifies. The argument rests on two facts the
// kernel already depends on: a task's response time is a function of
// the RT band and the strictly-higher-priority security chain only,
// and Algorithm 2's per-candidate feasibility is monotone in the
// candidate (the assumption the binary search and the two-probe hint
// verification both rest on). Under them, level i's search repeats the
// previous run's probe trajectory verbatim — hence returns the
// bit-identical star — iff every probe verdict is preserved, which
// decomposes per conjunct:
//
//   - Level i's own response and the conjuncts of every surviving task
//     above the first change are literally the same computation (their
//     chains contain no changed task).
//   - A conjunct REMOVED by the delta can only have mattered at the
//     minimality probe (star−1); it provably did not whenever
//     star == resp, where minimality is pinned by the task's own
//     period ≥ response bound. So removals shrink the adoptable prefix
//     to the levels before the first star > resp.
//   - A conjunct ADDED by the delta can only flip a feasible probe at
//     cand ≥ star to infeasible. Every such probe chain dominates
//     (period-wise ≥, response-wise ≤, task by task) the chain D =
//     (surviving tasks at their previous periods, added tasks at
//     Tmax), so feasibility of every task under D — additionsFeasible
//     below — implies all those conjuncts pass. Infeasible probes stay
//     infeasible: added interference cannot make a failing task pass.
//
// Budget verdicts cannot drift inside the prefix: every adopted
// level's tail task is required to satisfy the same
// Tmax − C < MaxFixpointIterations gate as probeWarm, under which a
// fixpoint provably resolves within the budget and the operational
// verdict equals the mathematical one.
func adoptablePrefix(sc *Scratch, sec []task.SecurityTask, pr *Prior) int {
	n := len(sec)
	if len(pr.Periods) != len(pr.Sec) || len(pr.Resp) != len(pr.Sec) {
		return 0
	}
	p := 0
	for p < n && p < len(pr.Sec) && sec[p] == pr.Sec[p] {
		p++
	}
	if p == 0 {
		return 0
	}
	// The budget gate over the new tail (see above; prefix tasks' own
	// conjuncts are identical computations and need no gate).
	for j := p; j < n; j++ {
		if sec[j].WCET > sec[j].MaxPeriod || sec[j].MaxPeriod-sec[j].WCET >= MaxFixpointIterations {
			return 0
		}
	}
	// Classify the differing tails. A task whose parameters changed
	// counts as removed AND added. Matching is by priority level — both
	// bands are in SecurityByPriority order with distinct priorities, so
	// a survivor (full struct equality) is found at its level by binary
	// search exactly as a name map would find it, and a task that kept
	// its name but moved levels fails the equality check either way.
	// This path runs on every warm admission; keeping it map-free is
	// what the allocs-admit-delta gate holds at zero growth.
	firstChanged := n
	for j := p; j < n; j++ {
		if oj := priorityLevel(pr.Sec, sec[j].Priority); oj < 0 || pr.Sec[oj] != sec[j] {
			firstChanged = j
			break
		}
	}
	removed := false
	for j := p; j < len(pr.Sec); j++ {
		if nj := priorityLevel(sec, pr.Sec[j].Priority); nj < 0 || sec[nj] != pr.Sec[j] {
			removed = true
			break
		}
	}
	if removed {
		for i := 0; i < p; i++ {
			if pr.Periods[i] != pr.Resp[i] {
				p = i
				break
			}
		}
		if p == 0 {
			return 0
		}
	}
	if firstChanged < n && !additionsFeasible(sc, sec, pr, firstChanged, removed) {
		return 0
	}
	return p
}

// additionsFeasible checks every task of sec from the first changed
// level down for feasibility under the dominating chain D: surviving
// tasks at their previous periods and responses, added tasks at Tmax.
// Surviving tasks warm-start from their previous response — a sound
// lower bound when nothing was removed (D only adds interference over
// the previous chain); with removals in play the bound direction is
// lost and the fixpoint restarts from C instead. Either way a failed
// or budget-limited fixpoint fails the check, which only costs the
// caller the fast path, never correctness.
func additionsFeasible(sc *Scratch, sec []task.SecurityTask, pr *Prior, firstChanged int, removed bool) bool {
	hp := sc.hp[:0]
	for j := 0; j < firstChanged; j++ {
		oj := priorityLevel(pr.Sec, sec[j].Priority)
		if oj < 0 || pr.Sec[oj] != sec[j] {
			sc.hp = hp[:0]
			return false // unreachable: firstChanged is the first such level
		}
		hp = append(hp, Interferer{WCET: sec[j].WCET, Period: pr.Periods[oj], Resp: pr.Resp[oj]})
	}
	ok := true
	for j := firstChanged; j < len(sec); j++ {
		cs, limit := sec[j].WCET, sec[j].MaxPeriod
		period, start := limit, cs
		if oj := priorityLevel(pr.Sec, sec[j].Priority); oj >= 0 && pr.Sec[oj] == sec[j] {
			period = pr.Periods[oj]
			if r := pr.Resp[oj]; !removed && r > start && r <= limit {
				start = r
			}
		}
		sc.primeHP(hp)
		r, fine := sc.fixpointPrimed(cs, start, limit)
		if !fine || r > limit {
			ok = false
			break
		}
		hp = append(hp, Interferer{WCET: cs, Period: period, Resp: r})
	}
	sc.hp = hp[:0]
	return ok
}

// priorityLevel returns the index in band — which must be in
// SecurityByPriority order, priorities distinct — of the task with the
// given priority, or -1 when no level has it. Hand-rolled so the warm
// admission path stays allocation-free.
func priorityLevel(band []task.SecurityTask, prio int) int {
	lo, hi := 0, len(band)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if band[mid].Priority < prio {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(band) && band[lo].Priority == prio {
		return lo
	}
	return -1
}

// suffixRespAtTmax is the responseTimes pass restricted to sec[from:],
// under a chain whose first `from` levels are already final (periods
// and resp filled in) and whose suffix sits at Tmax — the exact resp
// state the cold loop holds when it reaches level `from`. Component
// captures mirror responseTimes so the warm layers below start
// coherent.
func suffixRespAtTmax(sc *Scratch, sec []task.SecurityTask, periods, resp []task.Time, from int, mode CarryInMode) {
	hp := sc.hp[:0]
	for k := 0; k < from; k++ {
		hp = append(hp, Interferer{WCET: sec[k].WCET, Period: periods[k], Resp: resp[k]})
	}
	for i := from; i < len(sec); i++ {
		s := sec[i]
		r, ok := sc.MigratingWCRT(s.WCET, hp, s.MaxPeriod, mode)
		sc.rtAt[i] = -1
		if ok && mode != Exhaustive && sc.lastY == r {
			sc.rtAt[i], sc.ncAt[i], sc.ckAt[i] = sc.lastRT, sc.lastNC, sc.lastCK
		}
		if !ok {
			// Same pessimistic stand-in as responseTimes: a diverged
			// task still interferes with lower-priority ones.
			resp[i] = task.Infinity
			hp = append(hp, Interferer{WCET: s.WCET, Period: periods[i], Resp: periods[i]})
			continue
		}
		resp[i] = r
		hp = append(hp, Interferer{WCET: s.WCET, Period: periods[i], Resp: r})
	}
	sc.hp = hp[:0]
}
