package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
)

// Fixed re-posts one body to one path forever: dup-heavy traffic.
// Against hydrad this is the exact-byte duplicate hot path — after
// the first response the body digest cache serves every request.
type Fixed struct {
	Path string
	Body []byte
}

func (f Fixed) NewStream(_ *http.Client, _ string, _ int) (Stream, error) {
	if len(f.Body) == 0 {
		return nil, fmt.Errorf("fixed source for %s has no body", f.Path)
	}
	return fixedStream{req: Request{Path: f.Path, Body: f.Body}}, nil
}

type fixedStream struct{ req Request }

func (s fixedStream) Next(int) Request { return s.req }

// Rotating cycles a pool of distinct pre-encoded bodies: cold traffic.
// Workers start at staggered offsets so concurrent workers do not
// post the same body in lockstep (which would let the digest cache
// serve all but one of them).
type Rotating struct {
	Path   string
	Bodies [][]byte
}

// rotatingStride staggers worker start offsets; prime so consecutive
// workers land far apart in pools of any practical size.
const rotatingStride = 7919

func (r Rotating) NewStream(_ *http.Client, _ string, worker int) (Stream, error) {
	if len(r.Bodies) == 0 {
		return nil, fmt.Errorf("rotating source for %s has no bodies", r.Path)
	}
	return &rotatingStream{path: r.Path, bodies: r.Bodies, off: worker * rotatingStride}, nil
}

type rotatingStream struct {
	path   string
	bodies [][]byte
	off    int
}

func (s *rotatingStream) Next(i int) Request {
	return Request{Path: s.path, Body: s.bodies[(s.off+i)%len(s.bodies)]}
}

// SessionAdmit opens one admission session per worker (outside the
// measurement window) and then alternates admit/remove deltas against
// it: incremental-admission traffic in steady state. The admit delta
// should add what the remove delta removes, so the session returns to
// its base set every two requests.
type SessionAdmit struct {
	// Base is the task set the session opens on.
	Base []byte
	// Admit and Remove are the alternating delta bodies.
	Admit  []byte
	Remove []byte
}

func (s SessionAdmit) NewStream(client *http.Client, target string, _ int) (Stream, error) {
	resp, err := client.Post(target+"/v1/session", "application/json", bytes.NewReader(s.Base))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var open struct {
		SessionID string `json:"session_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&open); err != nil {
		return nil, fmt.Errorf("decoding session open response: %w", err)
	}
	if resp.StatusCode != http.StatusOK || open.SessionID == "" {
		return nil, fmt.Errorf("opening session: status %d", resp.StatusCode)
	}
	return &sessionStream{
		path:   "/v1/session/" + open.SessionID + "/admit",
		bodies: [2][]byte{s.Admit, s.Remove},
	}, nil
}

type sessionStream struct {
	path   string
	bodies [2][]byte
}

func (s *sessionStream) Next(i int) Request {
	return Request{Path: s.path, Body: s.bodies[i%2]}
}

// Mix interleaves child sources by integer weight: a schedule of
// length Σweights repeats, with each child appearing weight times,
// spread round-robin. Each child stream keeps its own request index,
// so a rotating child still cycles its whole pool.
type Mix struct {
	Entries []MixEntry
}

// MixEntry pairs a child source with its relative weight (≥1).
type MixEntry struct {
	Source Source
	Weight int
}

func (m Mix) NewStream(client *http.Client, target string, worker int) (Stream, error) {
	if len(m.Entries) == 0 {
		return nil, fmt.Errorf("mix source has no entries")
	}
	streams := make([]Stream, len(m.Entries))
	total := 0
	for i, e := range m.Entries {
		if e.Weight < 1 {
			return nil, fmt.Errorf("mix entry %d has weight %d (want ≥1)", i, e.Weight)
		}
		s, err := e.Source.NewStream(client, target, worker)
		if err != nil {
			return nil, err
		}
		streams[i] = s
		total += e.Weight
	}
	// Largest-remainder round-robin: lay the schedule out so children
	// alternate rather than run in blocks (a block of dup requests
	// behaves differently against the caches than an interleave).
	schedule := make([]int, 0, total)
	credit := make([]int, len(m.Entries))
	for len(schedule) < total {
		best, bestCredit := -1, 0
		for i, e := range m.Entries {
			credit[i] += e.Weight
			if best == -1 || credit[i] > bestCredit {
				best, bestCredit = i, credit[i]
			}
		}
		credit[best] -= total
		schedule = append(schedule, best)
	}
	return &mixStream{streams: streams, schedule: schedule, counts: make([]int, len(streams))}, nil
}

type mixStream struct {
	streams  []Stream
	schedule []int
	counts   []int
}

func (s *mixStream) Next(i int) Request {
	child := s.schedule[i%len(s.schedule)]
	j := s.counts[child]
	s.counts[child]++
	return s.streams[child].Next(j)
}
