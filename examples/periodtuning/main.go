// Period tuning: how the designer bound Tmax and the RT load shape the
// achievable monitoring frequency. The example sweeps (a) the Tmax of
// a single scanner against growing RT utilisation, showing where the
// system stops being schedulable, and (b) the number of security
// tasks, showing how Algorithm 1 distributes the remaining slack —
// the schedulability/monitoring trade-off of §4.5.
//
// Run with: go run ./examples/periodtuning
package main

import (
	"context"
	"fmt"
	"log"

	"hydrac"
)

func main() {
	// One analyzer serves every sweep below; with a cache sized for
	// the sweep, repeated configurations are free.
	a, err := hydrac.New(hydrac.WithCache(64))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Println("— sweep 1: one scanner (C=40) vs RT load, Tmax=2000 —")
	fmt.Printf("%-12s %-14s %-10s\n", "RT util/core", "scanner T*", "frequency")
	for load := hydrac.Time(10); load <= 80; load += 10 {
		ts := platform(load)
		ts.Security = []hydrac.SecurityTask{
			{Name: "scanner", WCET: 40, MaxPeriod: 2000, Priority: 0, Core: -1},
		}
		rep, err := a.Analyze(ctx, ts)
		if err != nil {
			log.Fatal(err)
		}
		if !rep.Schedulable {
			fmt.Printf("%-12.2f UNSCHEDULABLE\n", float64(load)/100)
			continue
		}
		fmt.Printf("%-12.2f %-14d %.2f Hz\n", float64(load)/100, rep.Tasks[0].Period, 1000/float64(rep.Tasks[0].Period))
	}

	fmt.Println()
	fmt.Println("— sweep 2: growing security workload at fixed RT load (0.4/core) —")
	fmt.Printf("%-8s %-40s\n", "tasks", "selected periods (priority order)")
	for n := 1; n <= 6; n++ {
		ts := platform(40)
		for i := 0; i < n; i++ {
			ts.Security = append(ts.Security, hydrac.SecurityTask{
				Name: fmt.Sprintf("mon%d", i), WCET: 40,
				MaxPeriod: 3000, Priority: i, Core: -1,
			})
		}
		rep, err := a.Analyze(ctx, ts)
		if err != nil {
			log.Fatal(err)
		}
		if !rep.Schedulable {
			fmt.Printf("%-8d UNSCHEDULABLE within Tmax=3000\n", n)
			continue
		}
		periods := make([]hydrac.Time, n)
		for i, v := range rep.Tasks {
			periods[i] = v.Period
		}
		fmt.Printf("%-8d %v\n", n, periods)
	}

	fmt.Println()
	fmt.Println("— sweep 3: Tmax sensitivity for the rover tripwire —")
	fmt.Printf("%-10s %-12s %-12s\n", "Tmax", "T*", "verdict")
	for tmax := hydrac.Time(6000); tmax <= 14000; tmax += 2000 {
		ts := platform(48) // navigation-like load on core 0
		ts.RT[1].WCET = 1120
		ts.RT[1].Period = 5000
		ts.RT[1].Deadline = 5000
		ts.Security = []hydrac.SecurityTask{
			{Name: "tripwire", WCET: 5342, MaxPeriod: tmax, Priority: 0, Core: -1},
		}
		rep, err := a.Analyze(ctx, ts)
		if err != nil {
			log.Fatal(err)
		}
		if !rep.Schedulable {
			fmt.Printf("%-10d %-12s %s\n", tmax, "-", "unschedulable — raise Tmax or shed RT load")
			continue
		}
		fmt.Printf("%-10d %-12d schedulable\n", tmax, rep.Tasks[0].Period)
	}
}

// platform builds a two-core system whose per-core RT utilisation is
// load/100: one task of period 100 on each core.
func platform(load hydrac.Time) *hydrac.TaskSet {
	return &hydrac.TaskSet{
		Cores: 2,
		RT: []hydrac.RTTask{
			{Name: "rt0", WCET: load, Period: 100, Deadline: 100, Core: 0, Priority: 0},
			{Name: "rt1", WCET: load, Period: 100, Deadline: 100, Core: 1, Priority: 1},
		},
	}
}
