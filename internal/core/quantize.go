package core

import (
	"fmt"

	"hydrac/internal/task"
)

// QuantizePeriods rounds the selected periods up to multiples of grid
// (deployments rarely program arbitrary-tick timers; the rover uses
// whole milliseconds, automotive stacks use 1/2/5/10 ms classes).
// Rounding *up* can only reduce interference, so schedulability of
// every task is preserved; the response times are recomputed under the
// quantized vector and returned in a fresh Result. Periods are capped
// at each task's Tmax (a period within grid of Tmax rounds to Tmax,
// not beyond).
func QuantizePeriods(ts *task.Set, res *Result, grid task.Time) (*Result, error) {
	if grid <= 0 {
		return nil, fmt.Errorf("core: grid must be positive, got %d", grid)
	}
	if !res.Schedulable {
		return nil, fmt.Errorf("core: cannot quantize an unschedulable result")
	}
	if len(res.Periods) != len(ts.Security) {
		return nil, fmt.Errorf("core: result does not match the task set")
	}
	out := &Result{
		Schedulable: true,
		Periods:     make([]task.Time, len(res.Periods)),
		Resp:        make([]task.Time, len(res.Periods)),
	}
	for i, p := range res.Periods {
		q := (p + grid - 1) / grid * grid
		if q > ts.Security[i].MaxPeriod {
			q = ts.Security[i].MaxPeriod
		}
		if q < p {
			// Tmax itself was off-grid; keep the exact feasible value.
			q = p
		}
		out.Periods[i] = q
	}

	// Recompute response times under the quantized vector.
	sys := NewSystem(ts)
	sec := ts.SecurityByPriority()
	byName := securityIndex(ts.Security)
	ordered := make([]task.Time, len(sec))
	for i, s := range sec {
		ordered[i] = out.Periods[byName[s.Name]]
	}
	resp := sys.ResponseTimes(sec, ordered, Dominance)
	for i, s := range sec {
		j := byName[s.Name]
		out.Resp[j] = resp[i]
		if resp[i] > out.Periods[j] {
			// Cannot happen — larger periods mean less interference —
			// but verify rather than assume.
			return nil, fmt.Errorf("core: quantization broke %s (R=%d > T=%d)", s.Name, resp[i], out.Periods[j])
		}
	}
	return out, nil
}
