// Command hydrabench is a closed-loop load generator for hydrad: it
// drives POST /v1/analyze at one or more concurrency levels and
// reports throughput (requests per second) and latency quantiles
// (p50/p95/p99) as JSON. The engine lives in internal/loadgen, which
// cmd/hydraperf reuses to run the declarative regression cases under
// test/regression/ — for paired before/after verdicts, reach for
// `hydraperf run`; hydrabench is the one-shot probe.
//
// Usage:
//
//	hydrabench [-url http://HOST:PORT | -targets a,b,c] [-set file.json]
//	           [-c 1,4,16] [-d 2s] [-endpoint /v1/analyze] [-out -]
//	           [-retries N]
//
// -targets sweeps a whole hydrad fleet: workers spread round-robin
// over the listed base URLs, 307 fleet redirects are followed and
// counted, and the JSON carries both the aggregate and a per-target
// split per level.
//
// Without -url, hydrabench serves the real hydrad handler
// (internal/hydradhttp) over httptest and loads that — a
// self-contained smoke mode for CI and laptops (no ports, no daemon
// lifecycle). Without -set, the rover task set ships as the workload.
//
// Closed loop means every worker posts, waits for the full response,
// then posts again: the offered load adapts to the service, so the
// measured RPS is the service's sustainable throughput at that
// concurrency, not a drop rate under a fixed arrival schedule.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"time"

	"hydrac"
	"hydrac/internal/fleet"
	"hydrac/internal/hydradhttp"
	"hydrac/internal/loadgen"
	"hydrac/internal/rover"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// output is the JSON document hydrabench emits. Single-target runs
// keep the historical target/levels shape; -targets runs add the
// target list and a per-level aggregate + per-target split.
type output struct {
	Target      string                     `json:"target,omitempty"`
	Targets     []string                   `json:"targets,omitempty"`
	Endpoint    string                     `json:"endpoint"`
	Levels      []loadgen.LevelResult      `json:"levels,omitempty"`
	FleetLevels []loadgen.FleetLevelResult `json:"fleet_levels,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hydrabench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	url := fs.String("url", "", "target base URL (e.g. http://127.0.0.1:8080); empty loads an in-process handler")
	targetsFlag := fs.String("targets", "", "comma-separated base URLs of a hydrad fleet; workers spread round-robin and results carry a per-target split (overrides -url)")
	setPath := fs.String("set", "", "task-set JSON file to post; empty uses the built-in rover set")
	levels := fs.String("c", "1,4,16", "comma-separated concurrency levels to sweep")
	dur := fs.Duration("d", 2*time.Second, "measurement duration per level")
	endpoint := fs.String("endpoint", "/v1/analyze", "path to load")
	outPath := fs.String("out", "-", "write the JSON results here (- for stdout)")
	cache := fs.Int("cache", 1024, "report cache size of the in-process handler (ignored with -url)")
	retries := fs.Int("retries", 0, "per-request retry budget (backoff + Retry-After, via internal/hydraclient); 0 fires each request once")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "hydrabench: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	body, err := loadBody(*setPath)
	if err != nil {
		fmt.Fprintln(stderr, "hydrabench:", err)
		return 2
	}
	concs, err := parseLevels(*levels)
	if err != nil {
		fmt.Fprintln(stderr, "hydrabench:", err)
		return 2
	}

	if *targetsFlag != "" {
		return runFleet(*targetsFlag, *endpoint, *outPath, body, concs, *dur, *retries, stdout, stderr)
	}

	target := *url
	if target == "" {
		a, err := hydrac.New(hydrac.WithCache(*cache))
		if err != nil {
			fmt.Fprintln(stderr, "hydrabench:", err)
			return 1
		}
		srv := httptest.NewServer(hydradhttp.NewHandler(hydradhttp.Config{
			Analyzer: a, Summary: map[string]any{"cache": *cache}, CacheSize: *cache,
		}))
		defer srv.Close()
		target = srv.URL
	}

	maxConc := 0
	for _, c := range concs {
		if c > maxConc {
			maxConc = c
		}
	}
	client := loadgen.NewClient(maxConc)
	// One request up front validates the pairing of set and endpoint
	// and warms the server's caches out of band.
	if err := loadgen.Do(client, target, loadgen.Request{Path: *endpoint, Body: body}); err != nil {
		fmt.Fprintln(stderr, "hydrabench:", err)
		return 1
	}

	src := loadgen.Fixed{Path: *endpoint, Body: body}
	doc := output{Target: target, Endpoint: *endpoint}
	for _, c := range concs {
		res, err := loadgen.Run(target, src, loadgen.Config{
			Levels:   []int{c},
			Duration: *dur,
			Client:   client,
			Retries:  *retries,
		})
		if err != nil {
			fmt.Fprintln(stderr, "hydrabench:", err)
			return 1
		}
		doc.Levels = append(doc.Levels, res[0])
		r := res[0]
		fmt.Fprintf(stderr, "hydrabench: c=%d  %0.f req/s  p50 %.2fms  p95 %.2fms  p99 %.2fms  (%d requests, %d shed, %d errors)\n",
			c, r.RPS, r.P50MS, r.P95MS, r.P99MS, r.Requests, r.Shed, r.Errors)
	}

	return writeOutput(doc, *outPath, stdout, stderr)
}

// runFleet is the -targets mode: sweep the levels round-robin across
// a hydrad fleet and report per-target splits next to the aggregate.
func runFleet(targetsCSV, endpoint, outPath string, body []byte, concs []int, dur time.Duration, retries int, stdout, stderr io.Writer) int {
	var targets []string
	for _, part := range strings.Split(targetsCSV, ",") {
		if t := fleet.Normalize(part); t != "" {
			targets = append(targets, t)
		}
	}
	if len(targets) == 0 {
		fmt.Fprintln(stderr, "hydrabench: -targets needs at least one base URL")
		return 2
	}
	maxConc := 0
	for _, c := range concs {
		if c > maxConc {
			maxConc = c
		}
	}
	client := loadgen.NewClient(maxConc)
	// One request per target up front validates every node serves the
	// set/endpoint pairing before the sweep commits to the fleet.
	for _, t := range targets {
		if err := loadgen.Do(client, t, loadgen.Request{Path: endpoint, Body: body}); err != nil {
			fmt.Fprintln(stderr, "hydrabench:", err)
			return 1
		}
	}
	src := loadgen.Fixed{Path: endpoint, Body: body}
	doc := output{Targets: targets, Endpoint: endpoint}
	for _, c := range concs {
		res, err := loadgen.RunFleet(targets, src, loadgen.Config{
			Levels:   []int{c},
			Duration: dur,
			Client:   client,
			Retries:  retries,
		})
		if err != nil {
			fmt.Fprintln(stderr, "hydrabench:", err)
			return 1
		}
		doc.FleetLevels = append(doc.FleetLevels, res[0])
		a := res[0].Aggregate
		fmt.Fprintf(stderr, "hydrabench: c=%d fleet  %0.f req/s  p50 %.2fms  p95 %.2fms  p99 %.2fms  (%d requests, %d shed, %d errors, %d redirects)\n",
			c, a.RPS, a.P50MS, a.P95MS, a.P99MS, a.Requests, a.Shed, a.Errors, a.Redirects)
		for _, t := range res[0].Targets {
			fmt.Fprintf(stderr, "hydrabench:   %s  %0.f req/s  p99 %.2fms  (%d requests)\n",
				t.Target, t.RPS, t.P99MS, t.Requests)
		}
	}
	return writeOutput(doc, outPath, stdout, stderr)
}

// writeOutput emits doc as indented JSON to outPath (or stdout).
func writeOutput(doc output, outPath string, stdout, stderr io.Writer) int {
	out := stdout
	if outPath != "-" && outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fmt.Fprintln(stderr, "hydrabench:", err)
			return 1
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(stderr, "hydrabench:", err)
		return 1
	}
	return 0
}

// loadBody returns the task-set bytes to post.
func loadBody(path string) ([]byte, error) {
	if path == "" {
		var buf bytes.Buffer
		if err := hydrac.EncodeTaskSet(&buf, rover.TaskSet()); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	return os.ReadFile(path)
}

// parseLevels parses the -c sweep list.
func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad concurrency level %q (want positive integers, e.g. -c 1,4,16)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, errors.New("no concurrency levels")
	}
	return out, nil
}
