package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestShardedBasics(t *testing.T) {
	s := NewSharded[int](64, 8)
	for i := 0; i < 64; i++ {
		s.Add(fmt.Sprintf("key-%d", i), i)
	}
	// A capacity-sized working set must survive intact: the 2x
	// per-shard slack exists precisely so an under-capacity store
	// never sheds a live entry.
	for i := 0; i < 64; i++ {
		v, ok := s.Get(fmt.Sprintf("key-%d", i))
		if !ok {
			t.Fatalf("key-%d evicted with the store under capacity", i)
		}
		if v != i {
			t.Fatalf("key-%d = %d", i, v)
		}
	}
	if s.Len() != 64 {
		t.Fatalf("Len %d != 64", s.Len())
	}
}

func TestShardedSmallCapacityIsExact(t *testing.T) {
	// Below minShardCap per shard the store degrades to one shard
	// with the legacy single-cache semantics: exact capacity.
	s := NewSharded[int](10, 4)
	for i := 0; i < 1000; i++ {
		s.Add(fmt.Sprintf("k%d", i), i)
	}
	if n := s.Len(); n != 10 {
		t.Fatalf("retained %d entries for capacity 10; want exactly 10 (single shard)", n)
	}
}

func TestShardedCapacityBound(t *testing.T) {
	s := NewSharded[int](256, 16)
	for i := 0; i < 100000; i++ {
		s.Add(fmt.Sprintf("k%d", i), i)
	}
	// 256/32 = 8 shards at 2*32 = 64 entries: hard bound 512.
	if n := s.Len(); n > 512 {
		t.Fatalf("retained %d entries for capacity 256 (2x slack bound 512)", n)
	}
	// And a fresh store filled to exactly its capacity keeps it all.
	s2 := NewSharded[int](256, 16)
	for i := 0; i < 256; i++ {
		s2.Add(fmt.Sprintf("key-%d", i), i)
	}
	if n := s2.Len(); n != 256 {
		t.Fatalf("under-capacity store evicted: retained %d of 256", n)
	}
}

func TestShardedNilNeverRetains(t *testing.T) {
	var s *Sharded[string]
	s = NewSharded[string](0, 8)
	if s != nil {
		t.Fatal("capacity 0 should return the nil store")
	}
	s.Add("a", "b")
	if _, ok := s.Get("a"); ok {
		t.Fatal("nil store retained an entry")
	}
	if s.Len() != 0 {
		t.Fatal("nil store has nonzero Len")
	}
}

func TestShardedConcurrent(t *testing.T) {
	s := NewSharded[int](256, 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("g%d-%d", g, i%50)
				s.Add(k, i)
				s.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if s.Len() == 0 {
		t.Fatal("nothing retained after concurrent churn")
	}
}

func TestShardedAddIfAbsent(t *testing.T) {
	s := NewSharded[int](64, 4)
	if !s.AddIfAbsent("k", 1) {
		t.Fatal("insert refused")
	}
	if s.AddIfAbsent("k", 2) {
		t.Fatal("duplicate insert accepted")
	}
	if v, _ := s.Get("k"); v != 1 {
		t.Fatalf("value overwritten: %d", v)
	}
	var nilStore *Sharded[int]
	if nilStore.AddIfAbsent("k", 1) {
		t.Fatal("nil store claimed to store")
	}
}
