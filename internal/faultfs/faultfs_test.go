package faultfs

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestOSPassthroughRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var fs FS = OS{}
	path := filepath.Join(dir, "a.txt")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	b, err := fs.ReadFile(path)
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	if err := fs.Rename(path, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
}

func TestInjectorFailNth(t *testing.T) {
	dir := t.TempDir()
	in := Wrap(nil).Fail(Rule{Op: OpSync, Nth: 2})
	f, err := in.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1 should pass: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 2 should fail injected, got %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 3 should pass again (one-shot Nth): %v", err)
	}
	if got := in.Count(OpSync); got != 3 {
		t.Fatalf("sync count = %d, want 3", got)
	}
}

func TestInjectorFailAfterAndReset(t *testing.T) {
	dir := t.TempDir()
	in := Wrap(nil).Fail(Rule{Op: OpWrite, After: 1, Err: ENOSPC})
	f, err := in.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("a")); err != nil {
		t.Fatalf("write 1 should pass: %v", err)
	}
	if _, err := f.Write([]byte("b")); !errors.Is(err, ENOSPC) {
		t.Fatalf("write 2 should be ENOSPC, got %v", err)
	}
	if _, err := f.Write([]byte("c")); !errors.Is(err, ENOSPC) {
		t.Fatalf("write 3 should stay ENOSPC, got %v", err)
	}
	in.Reset()
	if _, err := f.Write([]byte("d")); err != nil {
		t.Fatalf("write after Reset should pass: %v", err)
	}
}

func TestInjectorTornWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x")
	in := Wrap(nil).Fail(Rule{Op: OpWrite, Nth: 1, Torn: true})
	f, err := in.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write should fail injected, got %v", err)
	}
	if n != 5 {
		t.Fatalf("torn write landed %d bytes, want 5", n)
	}
	f.Close()
	b, _ := os.ReadFile(path)
	if string(b) != "01234" {
		t.Fatalf("on disk after torn write: %q, want %q", b, "01234")
	}
}

func TestInjectorPathFilter(t *testing.T) {
	dir := t.TempDir()
	in := Wrap(nil).Fail(Rule{Op: OpOpen, Path: "snap-"})
	if _, err := in.OpenFile(filepath.Join(dir, "seg.wal"), os.O_CREATE|os.O_WRONLY, 0o644); err != nil {
		t.Fatalf("non-matching open should pass: %v", err)
	}
	if _, err := in.OpenFile(filepath.Join(dir, "snap-3.json"), os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, ErrInjected) {
		t.Fatalf("matching open should fail injected, got %v", err)
	}
}

func TestChaosErrorAndLatency(t *testing.T) {
	var served int
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		w.WriteHeader(http.StatusOK)
	})
	c := NewChaos(next).
		Fail(ChaosRule{Path: "/v1/analyze", Nth: 2, Status: http.StatusServiceUnavailable, RetryAfter: 3})
	srv := httptest.NewServer(c)
	defer srv.Close()

	get := func(path string) *http.Response {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := get("/v1/analyze"); resp.StatusCode != http.StatusOK {
		t.Fatalf("request 1 passed through: got %d", resp.StatusCode)
	}
	resp := get("/v1/analyze")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request 2 should be injected 503, got %d", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want 3", ra)
	}
	if resp := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("non-matching path should pass: got %d", resp.StatusCode)
	}
	if c.Injected() != 1 {
		t.Fatalf("Injected() = %d, want 1", c.Injected())
	}

	// Delay-only rule lets the request through, slower.
	c.Reset()
	c.Fail(ChaosRule{Delay: 30 * time.Millisecond})
	t0 := time.Now()
	if resp := get("/v1/analyze"); resp.StatusCode != http.StatusOK {
		t.Fatalf("delayed request should pass, got %d", resp.StatusCode)
	}
	if d := time.Since(t0); d < 25*time.Millisecond {
		t.Fatalf("delay rule did not delay (took %s)", d)
	}
}
