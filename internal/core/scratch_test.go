package core

import (
	"math/rand"
	"testing"

	"hydrac/internal/task"
)

// naiveMigratingWCRT is the reference Eq. 7 creep the staircase kernel
// must match bit for bit: the pre-scratch implementation, one full
// omegaDominance evaluation per refinement under the shared iteration
// budget.
func naiveMigratingWCRT(sys *System, cs task.Time, hp []Interferer, limit task.Time) (task.Time, bool) {
	if cs > limit {
		return task.Infinity, false
	}
	return sys.fixedPoint(cs, limit, func(x task.Time) task.Time {
		return sys.omegaDominance(x, cs, hp)
	})
}

// randKernelCase draws a random platform + interferer band with edge
// density: tiny periods, WCETs up to the full period (100% utilisation
// staircases), response times up to twice the period (exercising the
// negative-x̄ corner of Eq. 4 that real callers never produce but the
// kernel must not miscompute).
func randKernelCase(rng *rand.Rand) (*System, []Interferer, task.Time) {
	m := 1 + rng.Intn(4)
	sys := &System{M: m, RTCores: make([][]Demand, m)}
	for core := 0; core < m; core++ {
		for n := rng.Intn(4); n > 0; n-- {
			t := task.Time(1 + rng.Intn(40))
			c := task.Time(1 + rng.Int63n(int64(t)))
			sys.RTCores[core] = append(sys.RTCores[core], Demand{WCET: c, Period: t})
		}
	}
	var hp []Interferer
	for n := rng.Intn(5); n > 0; n-- {
		t := task.Time(2 + rng.Intn(60))
		c := task.Time(1 + rng.Int63n(int64(t)))
		r := c + rng.Int63n(int64(2*t))
		hp = append(hp, Interferer{WCET: c, Period: t, Resp: r})
	}
	cs := task.Time(1 + rng.Intn(25))
	return sys, hp, cs
}

// The piecewise-linear form omegaLine reports must be EXACT: the value
// at x matches omegaDominance, and so does every point of the claimed
// piece [x, bp) under the claimed slope. This is the load-bearing
// invariant behind the in-piece replay and the closed-form creep
// batch.
func TestOmegaLineIsExactPiecewiseForm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3000; trial++ {
		sys, hp, cs := randKernelCase(rng)
		sc := NewScratch(sys)
		sc.primeHP(hp)
		x := cs + rng.Int63n(400)
		omega, slope, bp := sc.omegaLine(x, cs)
		if ref := sys.omegaDominance(x, cs, hp); omega != ref {
			t.Fatalf("trial %d: omegaLine(%d) = %d, omegaDominance = %d", trial, x, omega, ref)
		}
		if bp <= x {
			t.Fatalf("trial %d: breakpoint %d does not advance past x=%d", trial, bp, x)
		}
		if slope < 0 {
			t.Fatalf("trial %d: negative slope %d (Ω is monotone)", trial, slope)
		}
		end := min(bp, x+150)
		for y := x + 1; y < end; y++ {
			want := sys.omegaDominance(y, cs, hp)
			got := omega + slope*(y-x)
			if got != want {
				t.Fatalf("trial %d: piece [%d,%d) slope %d wrong at y=%d: line says %d, Ω says %d",
					trial, x, bp, slope, y, got, want)
			}
		}
	}
}

// The staircase kernel must reproduce the naive creep bit for bit:
// same fixed points, same divergence verdicts, on dense random
// interference sets. Limits stay below the iteration budget so the
// naive reference is guaranteed to settle one way or the other.
func TestStaircaseKernelMatchesNaiveCreep(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 4000; trial++ {
		sys, hp, cs := randKernelCase(rng)
		limit := cs + rng.Int63n(3000)
		wantR, wantOK := naiveMigratingWCRT(sys, cs, hp, limit)
		sc := NewScratch(sys)
		gotR, gotOK := sc.MigratingWCRT(cs, hp, limit, Dominance)
		if gotR != wantR || gotOK != wantOK {
			t.Fatalf("trial %d (M=%d, %d hp, cs=%d, limit=%d): kernel (%d,%v) != naive creep (%d,%v)",
				trial, sys.M, len(hp), cs, limit, gotR, gotOK, wantR, wantOK)
		}
		// A scratch is reusable: the second run from warm buffers (and
		// warm period windows) must agree with the first.
		againR, againOK := sc.MigratingWCRT(cs, hp, limit, Dominance)
		if againR != gotR || againOK != gotOK {
			t.Fatalf("trial %d: warm rerun (%d,%v) != first run (%d,%v)", trial, againR, againOK, gotR, gotOK)
		}
	}
}

// The conservative MaxFixpointIterations verdict is part of the
// analysis definition: a clamp-bound creep the naive kernel abandons
// after the budget must be reported unschedulable by the staircase
// kernel too — not solved through to the fixed point the naive creep
// never reached. The construction mirrors the regression set in
// resume_test.go: one heavy RT task whose clamp binds for ~10^7 ticks,
// more one-tick refinements than the budget allows.
func TestStaircaseKernelKeepsBudgetVerdict(t *testing.T) {
	sys := &System{M: 1, RTCores: [][]Demand{{
		{WCET: 10_000_000, Period: 1_000_000_000},
	}}}
	cs := task.Time(100_000_000)
	limit := task.Time(900_000_000)
	wantR, wantOK := naiveMigratingWCRT(sys, cs, nil, limit)
	if wantOK {
		t.Fatal("construction broken: the naive creep was expected to exhaust its budget")
	}
	gotR, gotOK := NewScratch(sys).MigratingWCRT(cs, nil, limit, Dominance)
	if gotR != wantR || gotOK != wantOK {
		t.Fatalf("budget verdict drifted: kernel (%d,%v) != naive creep (%d,%v)", gotR, gotOK, wantR, wantOK)
	}
}

// Steady-state fixpoints must not allocate: the scratch owns every
// buffer the kernel touches.
func TestMigratingWCRTAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	sys, hp, cs := randKernelCase(rng)
	for len(hp) == 0 { // ensure the carry-in machinery is exercised
		sys, hp, cs = randKernelCase(rng)
	}
	sc := NewScratch(sys)
	limit := cs + 5000
	if avg := testing.AllocsPerRun(200, func() {
		sc.MigratingWCRT(cs, hp, limit, Dominance)
	}); avg != 0 {
		t.Fatalf("MigratingWCRT allocates %.1f objects per steady-state call; want 0", avg)
	}
}

// The per-probe feasibility check — the binary search's inner loop —
// must be allocation-free too once the scratch is warm.
func TestLowerPrioritySchedulableAllocFree(t *testing.T) {
	ts := &task.Set{
		Cores: 2,
		RT: []task.RTTask{
			{Name: "a", WCET: 2, Period: 10, Deadline: 10, Core: 0, Priority: 0},
			{Name: "b", WCET: 5, Period: 40, Deadline: 40, Core: 1, Priority: 1},
		},
		Security: []task.SecurityTask{
			{Name: "s0", WCET: 3, MaxPeriod: 300, Priority: 0, Core: -1},
			{Name: "s1", WCET: 4, MaxPeriod: 400, Priority: 1, Core: -1},
			{Name: "s2", WCET: 2, MaxPeriod: 500, Priority: 2, Core: -1},
		},
	}
	sys := NewSystem(ts)
	sec := ts.SecurityByPriority()
	sc := NewScratch(sys)
	sc.ensure(len(sec))
	periods := []task.Time{300, 400, 500}
	resp := sc.responseTimes(sec, periods, Dominance, nil)
	if avg := testing.AllocsPerRun(200, func() {
		lowerPrioritySchedulable(sc, sec, periods, resp, 0, 120, Dominance)
	}); avg != 0 {
		t.Fatalf("lowerPrioritySchedulable allocates %.1f objects per probe; want 0", avg)
	}
}

// The incremental order-statistics machinery behind warm probes —
// shiftFix's component-cache fold and the primed fixpoint that replays
// the cached chain (heap-backed Eq. 4 carry-in, line replay, component
// split) — runs O(n) times per admitted delta at massive scale, so a
// single allocation per call would dominate the delta budget. Both
// must be allocation-free on a warm scratch.
func TestOrderStatisticsWarmPathAllocFree(t *testing.T) {
	ts := &task.Set{
		Cores: 2,
		RT: []task.RTTask{
			{Name: "a", WCET: 2, Period: 10, Deadline: 10, Core: 0, Priority: 0},
			{Name: "b", WCET: 5, Period: 40, Deadline: 40, Core: 1, Priority: 1},
		},
		Security: []task.SecurityTask{
			{Name: "s0", WCET: 3, MaxPeriod: 300, Priority: 0, Core: -1},
			{Name: "s1", WCET: 4, MaxPeriod: 400, Priority: 1, Core: -1},
			{Name: "s2", WCET: 2, MaxPeriod: 500, Priority: 2, Core: -1},
			{Name: "s3", WCET: 1, MaxPeriod: 600, Priority: 3, Core: -1},
		},
	}
	sys := NewSystem(ts)
	sec := ts.SecurityByPriority()
	sc := NewScratch(sys)
	sc.ensure(len(sec))
	periods := []task.Time{300, 400, 500, 600}
	resp := sc.responseTimes(sec, periods, Dominance, nil)
	e := chainDelta{c: 3, oldP: 300, newP: 290, oldR: resp[0], newR: resp[0] + 1}
	if avg := testing.AllocsPerRun(200, func() {
		sc.shiftFix(sec, resp, 1, e)
	}); avg != 0 {
		t.Fatalf("shiftFix allocates %.1f objects per fold; want 0", avg)
	}
	hp := make([]Interferer, 0, 3)
	for i := 0; i < 3; i++ {
		hp = append(hp, Interferer{WCET: sec[i].WCET, Period: periods[i], Resp: resp[i]})
	}
	sc.primeHP(hp)
	cs := sec[3].WCET
	if avg := testing.AllocsPerRun(200, func() {
		sc.fixpointPrimed(cs, cs, 600)
	}); avg != 0 {
		t.Fatalf("fixpointPrimed allocates %.1f objects per warm call; want 0", avg)
	}
}

// SelectPeriods results must be invariant under scratch reuse: a
// long-lived owner re-priming one workspace across many different
// systems (the admission engine's pattern) gets the same answers as
// fresh scratches.
func TestScratchReuseAcrossSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sc := NewScratch(nil)
	for trial := 0; trial < 300; trial++ {
		sys, hp, cs := randKernelCase(rng)
		limit := cs + rng.Int63n(2000)
		sc.Reset(sys)
		gotR, gotOK := sc.MigratingWCRT(cs, hp, limit, Dominance)
		wantR, wantOK := naiveMigratingWCRT(sys, cs, hp, limit)
		if gotR != wantR || gotOK != wantOK {
			t.Fatalf("trial %d: reused scratch (%d,%v) != naive (%d,%v)", trial, gotR, gotOK, wantR, wantOK)
		}
	}
}
