package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hydrac/internal/task"
)

// Property-based tests (testing/quick) on the analysis invariants.
// Each generated value carries a small random platform + security
// band, well-formed by construction.

// quickTask is one generated migrating task.
type quickTask struct {
	C, T task.Time
}

// quickSystem is a generated platform for the WCRT engine.
type quickSystem struct {
	M       int
	RTCores [][]Demand
	HP      []quickTask
	Cs      task.Time
}

// Generate implements quick.Generator: 1–4 cores, up to two RT tasks
// per core at bounded utilisation, up to four higher-priority
// migrating tasks.
func (quickSystem) Generate(r *rand.Rand, _ int) reflect.Value {
	s := quickSystem{M: 1 + r.Intn(4)}
	s.RTCores = make([][]Demand, s.M)
	for m := 0; m < s.M; m++ {
		for n := r.Intn(3); n > 0; n-- {
			p := task.Time(20 + r.Intn(180))
			c := 1 + task.Time(r.Int63n(int64(p)/5+1))
			s.RTCores[m] = append(s.RTCores[m], Demand{WCET: c, Period: p})
		}
	}
	for n := r.Intn(5); n > 0; n-- {
		p := task.Time(100 + r.Intn(400))
		c := 1 + task.Time(r.Int63n(int64(p)/5+1))
		s.HP = append(s.HP, quickTask{C: c, T: p})
	}
	s.Cs = 1 + task.Time(r.Intn(30))
	return reflect.ValueOf(s)
}

// interferers converts the generated hp band, assigning each task a
// feasible response time (R ∈ [C, T]).
func (s quickSystem) interferers(r task.Time) []Interferer {
	out := make([]Interferer, len(s.HP))
	for i, h := range s.HP {
		resp := h.C + (h.T-h.C)*r%max(h.T-h.C+1, 1)
		if resp < h.C {
			resp = h.C
		}
		out[i] = Interferer{WCET: h.C, Period: h.T, Resp: resp}
	}
	return out
}

// The fixed point never undercuts the task's own WCET, and a converged
// result is genuinely a fixed point of Eq. 7.
func TestQuickWCRTFixedPoint(t *testing.T) {
	f := func(s quickSystem) bool {
		sys := &System{M: s.M, RTCores: s.RTCores}
		hp := s.interferers(3)
		limit := task.Time(1 << 22)
		r, ok := sys.MigratingWCRT(s.Cs, hp, limit, Dominance)
		if !ok {
			return true
		}
		if r < s.Cs {
			return false
		}
		return sys.omegaDominance(r, s.Cs, hp)/task.Time(s.M)+s.Cs == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Adding one more higher-priority migrating task never shrinks the
// response time.
func TestQuickWCRTMonotoneInInterference(t *testing.T) {
	f := func(s quickSystem) bool {
		if len(s.HP) == 0 {
			return true
		}
		sys := &System{M: s.M, RTCores: s.RTCores}
		hp := s.interferers(3)
		limit := task.Time(1 << 22)
		rSmall, okSmall := sys.MigratingWCRT(s.Cs, hp[:len(hp)-1], limit, Dominance)
		rBig, okBig := sys.MigratingWCRT(s.Cs, hp, limit, Dominance)
		if !okSmall {
			return true
		}
		if !okBig {
			return true // divergence with more interference is legal
		}
		return rBig >= rSmall
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Adding a core never hurts: the same workload on M+1 cores has a
// response time no larger than on M cores.
func TestQuickWCRTMonotoneInCores(t *testing.T) {
	f := func(s quickSystem) bool {
		sysM := &System{M: s.M, RTCores: s.RTCores}
		grown := append(append([][]Demand(nil), s.RTCores...), nil) // one empty extra core
		sysM1 := &System{M: s.M + 1, RTCores: grown}
		hp := s.interferers(3)
		limit := task.Time(1 << 22)
		rM, okM := sysM.MigratingWCRT(s.Cs, hp, limit, Dominance)
		rM1, okM1 := sysM1.MigratingWCRT(s.Cs, hp, limit, Dominance)
		if !okM {
			return true
		}
		return okM1 && rM1 <= rM
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// quickSet generates a full task set for period-selection properties.
type quickSet struct {
	TS *task.Set
}

func (quickSet) Generate(r *rand.Rand, _ int) reflect.Value {
	m := 1 + r.Intn(3)
	ts := &task.Set{Cores: m}
	for c := 0; c < m; c++ {
		for n := 1 + r.Intn(2); n > 0; n-- {
			p := task.Time(20 + r.Intn(180))
			w := 1 + task.Time(r.Int63n(int64(p)/4+1))
			ts.RT = append(ts.RT, task.RTTask{
				Name: "rt" + string(rune('a'+c)) + string(rune('0'+n)),
				WCET: w, Period: p, Deadline: p, Core: c,
			})
		}
	}
	task.AssignRateMonotonic(ts.RT)
	for n := 1 + r.Intn(4); n > 0; n-- {
		tmax := task.Time(300 + r.Intn(1200))
		w := 1 + task.Time(r.Int63n(int64(tmax)/6+1))
		ts.Security = append(ts.Security, task.SecurityTask{
			Name: "s" + string(rune('0'+n)), WCET: w, MaxPeriod: tmax,
			Priority: n, Core: -1,
		})
	}
	return reflect.ValueOf(quickSet{TS: ts})
}

// Relaxing every Tmax never turns a schedulable set unschedulable.
// (Individual selected periods may legitimately grow: looser bounds
// let high-priority tasks shrink further, which pushes more
// interference onto the tasks below — Algorithm 1's documented
// greediness.)
func TestQuickSelectPeriodsMonotoneInTmax(t *testing.T) {
	f := func(q quickSet) bool {
		base, err := SelectPeriods(q.TS, Options{})
		if err != nil || !base.Schedulable {
			return true
		}
		relaxed := q.TS.Clone()
		for i := range relaxed.Security {
			relaxed.Security[i].MaxPeriod *= 2
		}
		after, err := SelectPeriods(relaxed, Options{})
		return err == nil && after.Schedulable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Shrinking one security WCET keeps the set schedulable.
func TestQuickSelectPeriodsMonotoneInWCET(t *testing.T) {
	f := func(q quickSet, pick uint8) bool {
		base, err := SelectPeriods(q.TS, Options{})
		if err != nil || !base.Schedulable {
			return true
		}
		i := int(pick) % len(q.TS.Security)
		if q.TS.Security[i].WCET == 1 {
			return true
		}
		smaller := q.TS.Clone()
		smaller.Security[i].WCET = smaller.Security[i].WCET/2 + smaller.Security[i].WCET%2
		after, err := SelectPeriods(smaller, Options{})
		return err == nil && after.Schedulable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
