// Package hydrac is a Go implementation of HYDRA-C — "Period
// Adaptation for Continuous Security Monitoring in Multicore Real-Time
// Systems" (Hasan, Mohan, Pellizzoni, Bobba — DATE 2020).
//
// HYDRA-C integrates periodic security monitoring tasks (intrusion
// detectors, integrity checkers, …) into a legacy partitioned
// multicore real-time system without touching the RT tasks: the
// security band runs below every RT task and may migrate to whichever
// core is idle (semi-partitioned scheduling), and each security task's
// period is minimised — the monitor runs as often as possible — while
// every schedulability guarantee is preserved.
//
// The public API is the Analyzer, a long-lived, concurrency-safe
// service object running the whole admission pipeline (validate →
// partition → Algorithm 1 period selection → baselines → simulation)
// and returning one structured Report per task set:
//
//	a, err := hydrac.New(
//		hydrac.WithBaselines(hydrac.SchemeHydra),
//		hydrac.WithSimulation(hydrac.SimConfig{Horizon: 60000}),
//		hydrac.WithCache(1024),
//	)
//	rep, err := a.Analyze(ctx, ts)
//	if err != nil || !rep.Schedulable { … }
//	for _, v := range rep.Tasks {
//		fmt.Println(v.Name, v.Period, v.WCRT)
//	}
//
// AnalyzeBatch fans a bulk admission check out over all cores with
// deterministic results; cmd/hydrad serves the same pipeline over
// HTTP (POST /v1/analyze). The one-shot functions below (SelectPeriods,
// Hydra, Simulate, …) predate the Analyzer and remain as thin
// deprecated wrappers.
//
// Implementation packages:
//
//	internal/task       task model (RT + security, integer ticks)
//	internal/rta        uniprocessor response-time analysis (Eq. 1)
//	internal/partition  RT bin-packing with exact RTA admission
//	internal/core       HYDRA-C WCRT analysis + Algorithms 1 & 2
//	internal/baseline   HYDRA, HYDRA-TMax, GLOBAL-TMax baselines
//	internal/gen        Table-3 synthetic workload generator
//	internal/seed       per-item RNG seed derivation (splitmix64)
//	internal/sweep      parallel sweep engine (deterministic sharding)
//	internal/lru        concurrency-safe LRU for the report cache
//	internal/sim        discrete-event multicore scheduler
//	internal/ids        integrity/rootkit detection substrate
//	internal/rover      the paper's rover platform and Fig. 5 trials
//	internal/experiments  figure-by-figure reproduction harness
//
// See examples/ for runnable scenarios and DESIGN.md for the full
// system inventory.
package hydrac

import (
	"context"
	"io"

	"hydrac/internal/baseline"
	"hydrac/internal/core"
	"hydrac/internal/partition"
	"hydrac/internal/sim"
	"hydrac/internal/task"
)

// Core model types.
type (
	// Time is an instant or duration in integer clock ticks.
	Time = task.Time
	// TaskSet is a complete system: cores, RT tasks, security tasks.
	// Validate, Hash, Clone and the utilisation helpers are promoted
	// from the underlying type.
	TaskSet = task.Set
	// RTTask is a partitioned hard real-time task (C, T, D).
	RTTask = task.RTTask
	// SecurityTask is a security monitor (C, T, Tmax).
	SecurityTask = task.SecurityTask
)

// DecodeTaskSet reads a task set from its JSON file format (the same
// schema cmd/hydrac and cmd/hydrad speak). Missing deadlines default
// to the period; missing priorities default to rate-monotonic (RT)
// and max-period-monotonic (security) order. The set is validated.
func DecodeTaskSet(r io.Reader) (*TaskSet, error) { return task.Decode(r) }

// EncodeTaskSet writes a task set as indented JSON in the file format
// DecodeTaskSet reads.
func EncodeTaskSet(w io.Writer, ts *TaskSet) error { return task.Encode(w, ts) }

// Period selection (the paper's primary contribution).
type (
	// Options tunes Algorithm 1; the zero value is the paper's
	// configuration.
	Options = core.Options
	// Result carries the selected periods and response times.
	//
	// Deprecated: new code should read the richer Report returned by
	// Analyzer.Analyze.
	Result = core.Result
)

// SelectPeriods runs Algorithm 1: minimum feasible periods for the
// security tasks of ts under semi-partitioned scheduling. Unlike the
// original one-shot function it accepts unpartitioned RT tasks and
// places them best-fit first.
//
// Deprecated: build an Analyzer once and call Analyze; it adds
// context cancellation, caching, baselines and batching.
func SelectPeriods(ts *TaskSet, opt Options) (*Result, error) {
	a, err := New(WithOptions(opt))
	if err != nil {
		return nil, err
	}
	rep, err := a.Analyze(context.Background(), ts)
	if err != nil {
		return nil, err
	}
	return rep.toResult(), nil
}

// toResult converts a report back to the legacy Result shape.
func (r *Report) toResult() *Result {
	if !r.Schedulable {
		return &Result{}
	}
	res := &Result{
		Schedulable: true,
		Periods:     make([]Time, len(r.Tasks)),
		Resp:        make([]Time, len(r.Tasks)),
	}
	for i, v := range r.Tasks {
		res.Periods[i], res.Resp[i] = v.Period, v.WCRT
	}
	return res
}

// Apply writes selected periods into a clone of ts.
//
// Deprecated: use Report.ApplyTo.
func Apply(ts *TaskSet, res *Result) *TaskSet { return core.Apply(ts, res) }

// Baseline schemes of the paper's evaluation.
type PartitionedResult = baseline.PartitionedResult

// Hydra is the DATE 2018 fully partitioned baseline (greedy placement
// with per-core period optimisation).
//
// Deprecated: use Analyzer.Baseline(ctx, ts, SchemeHydra), or
// WithBaselines to attach the verdict to every report.
func Hydra(ts *TaskSet) (*PartitionedResult, error) {
	return legacyPartitioned(ts, SchemeHydra)
}

// HydraAggressive pins each period to its WCRT on placement — the
// paper's verbatim description of HYDRA's greedy.
//
// Deprecated: use Analyzer.Baseline with SchemeHydraAggressive.
func HydraAggressive(ts *TaskSet) (*PartitionedResult, error) {
	return legacyPartitioned(ts, SchemeHydraAggressive)
}

// HydraTMax keeps the partitioned placement with periods at Tmax.
//
// Deprecated: use Analyzer.Baseline with SchemeHydraTMax.
func HydraTMax(ts *TaskSet) (*PartitionedResult, error) {
	return legacyPartitioned(ts, SchemeHydraTMax)
}

func legacyPartitioned(ts *TaskSet, scheme Scheme) (*PartitionedResult, error) {
	a, err := New()
	if err != nil {
		return nil, err
	}
	v, err := a.Baseline(context.Background(), ts, scheme)
	if err != nil {
		return nil, err
	}
	res := &PartitionedResult{Schedulable: v.Schedulable}
	for _, t := range v.Tasks {
		res.Periods = append(res.Periods, t.Period)
		res.Resp = append(res.Resp, t.WCRT)
		res.Cores = append(res.Cores, t.Core)
	}
	return res, nil
}

// GlobalResult carries GLOBAL-TMax response times.
type GlobalResult = baseline.GlobalResult

// GlobalTMax checks global fixed-priority schedulability with periods
// at Tmax.
//
// Deprecated: use Analyzer.Baseline with SchemeGlobalTMax.
func GlobalTMax(ts *TaskSet) (*GlobalResult, error) {
	a, err := New()
	if err != nil {
		return nil, err
	}
	v, err := a.Baseline(context.Background(), ts, SchemeGlobalTMax)
	if err != nil {
		return nil, err
	}
	res := &GlobalResult{Schedulable: v.Schedulable}
	for _, t := range v.RT {
		res.RTResp = append(res.RTResp, t.WCRT)
	}
	for _, t := range v.Tasks {
		res.SecResp = append(res.SecResp, t.WCRT)
	}
	return res, nil
}

// RT task partitioning.
type PartitionHeuristic = partition.Heuristic

// Partitioning heuristics for the RT band.
const (
	BestFit  = partition.BestFit
	FirstFit = partition.FirstFit
	WorstFit = partition.WorstFit
	NextFit  = partition.NextFit
)

// Partition assigns the RT tasks of ts to cores in place.
//
// Deprecated: the Analyzer partitions unassigned sets automatically
// (configure the heuristic with WithHeuristic).
func Partition(ts *TaskSet, h PartitionHeuristic) error { return partition.Assign(ts, h) }

// Simulation.
type (
	// SimConfig controls a simulation run.
	SimConfig = sim.Config
	// SimResult is the outcome of a run.
	SimResult = sim.Result
	// Policy selects the migration model.
	Policy = sim.Policy
)

// Scheduling policies.
const (
	// SemiPartitioned pins RT tasks and migrates the security band
	// (HYDRA-C's runtime model).
	SemiPartitioned = sim.SemiPartitioned
	// FullyPartitioned pins both bands (HYDRA's runtime model).
	FullyPartitioned = sim.FullyPartitioned
	// Global migrates everything (GLOBAL-TMax's runtime model).
	Global = sim.Global
)

// Simulate runs the discrete-event scheduler on a configured set.
// For the summary quantities alone, prefer WithSimulation, which
// attaches them to every admitted report; Simulate remains the door
// to full traces (JobLog, Gantt).
func Simulate(ts *TaskSet, cfg SimConfig) (*SimResult, error) { return sim.Run(ts, cfg) }

// SimulateCtx is Simulate with cancellation.
func SimulateCtx(ctx context.Context, ts *TaskSet, cfg SimConfig) (*SimResult, error) {
	return sim.RunCtx(ctx, ts, cfg)
}

// Gantt renders an ASCII schedule chart from a traced run.
func Gantt(r *SimResult, from, to, step Time) string { return sim.Gantt(r, from, to, step) }
