// Package rta implements classic uniprocessor fixed-priority
// preemptive response-time analysis (Joseph & Pandya / Audsley),
// the necessary-and-sufficient schedulability condition the paper
// assumes for the partitioned RT band (Eq. 1):
//
//	∃t ∈ (0, Dr] :  Cr + Σ_{τi ∈ hp(τr)} ⌈t/Ti⌉·Ci ≤ t
//
// The smallest such t is the worst-case response time, found by the
// usual fixed-point iteration starting from Cr.
package rta

import (
	"sync"
	"sync/atomic"

	"hydrac/internal/task"
)

// Demand is one higher-priority interferer: a (WCET, Period) pair.
type Demand struct {
	WCET   task.Time
	Period task.Time
}

// MaxIterations bounds the fixed-point iteration of ResponseTime. A
// converging recurrence settles in a handful of steps per interferer;
// the cap only matters for near-overload demand, where x creeps up by
// a few ticks per step and, with a huge limit (or task.Infinity), the
// loop would otherwise run for practically ever. A task that has not
// converged after this many refinements is reported unschedulable —
// conservative, never wrong in the accepting direction.
const MaxIterations = 1 << 22

// ResponseTime returns the worst-case response time of a task with
// execution time wcet under interference from hp on one core, or
// (task.Infinity, false) if the iteration exceeds limit (the task's
// deadline or period bound): the task is then unschedulable.
//
// The iteration is x(0) = wcet; x(k+1) = wcet + Σ ⌈x(k)/Ti⌉·Ci and
// terminates at the least fixed point. The demand Σ ⌈y/Ti⌉·Ci is a
// staircase, constant between release boundaries, so when a refinement
// lands strictly below the next boundary the recurrence has already
// converged: re-evaluating at x(k+1) reads the same staircase step and
// returns x(k+1) unchanged. The loop exploits that to finish one
// boundary-crossing per iteration instead of creeping tick by tick
// through dense-release near-overload cores — same least fixed point,
// never more iterations than the naive creep.
//
// Termination is guaranteed for every limit including task.Infinity:
// a core whose higher-priority demand alone reaches 100% utilisation
// has no fixed point (Σ ⌈x/Ti⌉·Ci ≥ x·ΣCi/Ti ≥ x, so the recurrence
// strictly grows forever) and is rejected up front, and MaxIterations
// backstops near-overload creep the utilisation screen's floating-
// point sum cannot distinguish from exactly 1. CoreSchedulable and
// CoreResponseTimes share this function with identical limits (the
// task's deadline), so a core is CoreSchedulable iff no entry of
// CoreResponseTimes is task.Infinity.
func ResponseTime(wcet task.Time, hp []Demand, limit task.Time) (task.Time, bool) {
	if wcet > limit {
		return task.Infinity, false
	}
	var u float64
	for _, d := range hp {
		u += float64(d.WCET) / float64(d.Period)
	}
	if u >= 1 && wcet > 0 {
		// Exactly-100% (or more) higher-priority utilisation: the
		// recurrence has no fixed point for any positive wcet.
		return task.Infinity, false
	}
	x := wcet
	for iter := 0; iter < MaxIterations; iter++ {
		next := wcet
		// bound is the first window length where any ⌈y/Ti⌉ step
		// rises: the demand is constant on [x, bound).
		bound := task.Infinity
		for _, d := range hp {
			q := ceilDiv(x, d.Period)
			next += q * d.WCET
			// q·T ≥ x always; a smaller product is overflow wrap, and
			// skipping the bound update just forfeits the shortcut.
			if b := q * d.Period; b >= x && b+1 < bound {
				bound = b + 1
			}
		}
		if next == x {
			return x, true
		}
		if next > limit || next < x {
			// next < x cannot happen with non-negative demands but
			// guards against overflow wrap-around.
			return task.Infinity, false
		}
		if next < bound {
			// The refinement stayed on the same staircase step, so
			// the demand at next equals the demand at x and next is
			// the least fixed point.
			return next, true
		}
		x = next
	}
	return task.Infinity, false
}

// CoreSchedulable checks Eq. 1 for every RT task assigned to a single
// core: each task must have WCRT ≤ deadline given interference from
// the higher-priority tasks on the same core. The input must be the
// core's tasks sorted by priority (highest first), as produced by
// task.Set.RTOnCore.
//
// CoreSchedulable and CoreResponseTimes run the identical per-task
// iteration with the identical limit (the task's deadline), so
// CoreSchedulable(tasks) is true iff CoreResponseTimes(tasks) contains
// no task.Infinity entry.
func CoreSchedulable(tasks []task.RTTask) bool {
	hp := make([]Demand, 0, len(tasks))
	for _, t := range tasks {
		if _, ok := ResponseTime(t.WCET, hp, t.Deadline); !ok {
			return false
		}
		hp = append(hp, Demand{WCET: t.WCET, Period: t.Period})
	}
	return true
}

// CoreResponseTimes returns the WCRT of every task on one core
// (ordered as the input, which must be priority-sorted highest first).
// Unschedulable tasks get task.Infinity; the verdict is consistent
// with CoreSchedulable (see there).
func CoreResponseTimes(tasks []task.RTTask) []task.Time {
	out := make([]task.Time, len(tasks))
	hp := make([]Demand, 0, len(tasks))
	for i, t := range tasks {
		r, ok := ResponseTime(t.WCET, hp, t.Deadline)
		if !ok {
			r = task.Infinity
		}
		out[i] = r
		hp = append(hp, Demand{WCET: t.WCET, Period: t.Period})
	}
	return out
}

// SetSchedulable checks Eq. 1 on every core of a partitioned RT set.
func SetSchedulable(ts *task.Set) bool {
	for m := 0; m < ts.Cores; m++ {
		if !CoreSchedulable(ts.RTOnCore(m)) {
			return false
		}
	}
	return true
}

// ParallelFor runs fn(i) for every i in [0, n) across at most workers
// goroutines pulling indices from a shared counter, returning when
// all calls complete. workers <= 1 (or n <= 1) runs inline. fn must
// be safe to call concurrently for distinct indices and must confine
// its writes to per-index slots — the caller merges those slots in
// index order afterwards, which is what makes fan-outs built on this
// helper deterministic (the sweep engine's ordered-merge argument).
func ParallelFor(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// SetSchedulableWorkers is SetSchedulable with the per-core verdicts
// fanned out across a bounded worker group. Cores are independent —
// a core's Eq. 1 fixpoints read only its own tasks — so each verdict
// lands in its own slot and the slots merge in core order. The merged
// verdict is the conjunction over all cores, which is
// order-independent, so any worker count (including 1) returns
// exactly what the serial loop returns. The serial loop stops at the
// first unschedulable core; the parallel form evaluates every core —
// more work on the failure path, identical verdicts everywhere.
func SetSchedulableWorkers(ts *task.Set, workers int) bool {
	if workers <= 1 || ts.Cores <= 1 {
		return SetSchedulable(ts)
	}
	verdicts := make([]bool, ts.Cores)
	ParallelFor(ts.Cores, workers, func(m int) {
		verdicts[m] = CoreSchedulable(ts.RTOnCore(m))
	})
	for _, ok := range verdicts {
		if !ok {
			return false
		}
	}
	return true
}

// SetResponseTimesWorkers computes CoreResponseTimes for every core
// of a partitioned set, fanning the independent per-core computations
// across a bounded worker group and merging the result slices in core
// order. workers <= 1 runs serially; results are identical at any
// worker count (each core's vector depends only on that core's
// tasks).
func SetResponseTimesWorkers(ts *task.Set, workers int) [][]task.Time {
	out := make([][]task.Time, ts.Cores)
	ParallelFor(ts.Cores, workers, func(m int) {
		out[m] = CoreResponseTimes(ts.RTOnCore(m))
	})
	return out
}

// ceilDiv returns ⌈a/b⌉ for a ≥ 0, b > 0.
func ceilDiv(a, b task.Time) task.Time {
	return (a + b - 1) / b
}
