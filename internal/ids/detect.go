package ids

import (
	"fmt"
	"sort"

	"hydrac/internal/sim"
	"hydrac/internal/task"
)

// ScanModel describes how a periodic scanning task covers its target:
// each job sweeps Objects artifacts sequentially, spending an equal
// share of the job's WCET on each. Progress advances only while the
// job executes, so preemptions stretch the wall-clock coverage of each
// artifact — exactly the effect HYDRA-C's continuous execution
// minimises (§1: an interrupted IDS gives the adversary a window).
type ScanModel struct {
	// WCET is the job's execution demand C.
	WCET task.Time
	// Objects is the number of artifacts one job covers (N files for
	// Tripwire, 1 for a whole-profile kernel-module check).
	Objects int
}

// sliceBounds returns the execution-progress window [start, end) a job
// spends on object k.
func (m ScanModel) sliceBounds(k int) (start, end task.Time) {
	n := task.Time(m.Objects)
	return m.WCET * task.Time(k) / n, m.WCET * task.Time(k+1) / n
}

// wallClockAt maps execution progress p (ticks of accumulated
// execution) within a job to the wall-clock instant it is reached,
// given the job's execution intervals. Returns −1 if the job never
// accumulates p ticks within the trace.
func wallClockAt(ivs []sim.Interval, p task.Time) task.Time {
	var acc task.Time
	for _, iv := range ivs {
		d := iv.Duration()
		if p <= acc+d {
			return iv.Start + (p - acc)
		}
		acc += d
	}
	return -1
}

// Detection is the outcome of a detection-latency query.
type Detection struct {
	// Detected reports whether any job in the trace catches the
	// attack.
	Detected bool
	// At is the wall-clock instant the scanner finishes re-reading the
	// tampered artifact (the paper's detection time reference point).
	At task.Time
	// Latency is At − AttackTime.
	Latency task.Time
	// Job is the index (within the task's trace) of the detecting job.
	Job int
}

// DetectionTime computes when a scanning task detects an attack that
// tampered with object victim at instant attack, given the task's
// execution trace from the simulator (jobs of one task, any order).
//
// A job detects the attack iff it *starts reading* the victim object
// at or after the attack instant — a scan pass that already moved past
// the object cannot see the modification, which is the evasion window
// the paper's continuous-monitoring argument is about. Detection is
// reported at the instant the victim's scan slice completes.
func DetectionTime(jobs []sim.JobRecord, m ScanModel, attack task.Time, victim int) (Detection, error) {
	if victim < 0 || victim >= m.Objects {
		return Detection{}, fmt.Errorf("ids: victim %d out of range [0,%d)", victim, m.Objects)
	}
	if m.WCET <= 0 || m.Objects <= 0 {
		return Detection{}, fmt.Errorf("ids: invalid scan model %+v", m)
	}
	ordered := append([]sim.JobRecord(nil), jobs...)
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].Release < ordered[b].Release })

	pStart, pEnd := m.sliceBounds(victim)
	for idx, j := range ordered {
		readStart := wallClockAt(j.Intervals, pStart)
		readEnd := wallClockAt(j.Intervals, pEnd)
		if readStart < 0 || readEnd < 0 {
			continue // job truncated by the horizon before covering the victim
		}
		if readStart >= attack {
			return Detection{Detected: true, At: readEnd, Latency: readEnd - attack, Job: idx}, nil
		}
	}
	return Detection{}, nil
}

// ReactiveDetection models the dependent-checks extension the paper
// sketches in §6: a first-stage monitor a0 notices the anomaly, and a
// second-stage action a1 (e.g. a system-call audit) confirms it on its
// next job that starts after a0's finding. The returned Detection
// refers to the completion of the confirming a1 job.
func ReactiveDetection(a0Jobs []sim.JobRecord, m0 ScanModel, a1Jobs []sim.JobRecord, attack task.Time, victim int) (Detection, error) {
	first, err := DetectionTime(a0Jobs, m0, attack, victim)
	if err != nil || !first.Detected {
		return first, err
	}
	ordered := append([]sim.JobRecord(nil), a1Jobs...)
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].Release < ordered[b].Release })
	for idx, j := range ordered {
		if len(j.Intervals) == 0 || j.Finish < 0 {
			continue
		}
		if j.Intervals[0].Start >= first.At {
			return Detection{Detected: true, At: j.Finish, Latency: j.Finish - attack, Job: idx}, nil
		}
	}
	return Detection{}, nil
}
