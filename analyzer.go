package hydrac

import (
	"context"
	"fmt"
	"time"

	"hydrac/internal/baseline"
	"hydrac/internal/core"
	"hydrac/internal/lru"
	"hydrac/internal/partition"
	"hydrac/internal/sim"
	"hydrac/internal/sweep"
)

// Scheme names an analysis scheme for WithBaselines and the verdicts
// it produces.
type Scheme string

const (
	// SchemeHydraC is the paper's contribution (Algorithm 1); it is
	// always run — the others are opt-in comparison baselines.
	SchemeHydraC Scheme = "hydra-c"
	// SchemeHydra is the DATE 2018 partitioned baseline with per-core
	// period minimisation.
	SchemeHydra Scheme = "hydra"
	// SchemeHydraAggressive pins each period to its WCRT on placement.
	SchemeHydraAggressive Scheme = "hydra-aggressive"
	// SchemeHydraTMax keeps the partitioned placement with periods at
	// Tmax.
	SchemeHydraTMax Scheme = "hydra-tmax"
	// SchemeGlobalTMax checks global fixed-priority schedulability
	// with periods at Tmax.
	SchemeGlobalTMax Scheme = "global-tmax"
)

// ParseScheme maps the wire/CLI spelling of a baseline scheme to its
// Scheme value.
func ParseScheme(s string) (Scheme, error) {
	switch sch := Scheme(s); sch {
	case SchemeHydra, SchemeHydraAggressive, SchemeHydraTMax, SchemeGlobalTMax:
		return sch, nil
	case SchemeHydraC:
		return "", fmt.Errorf("scheme %q is the primary analysis, not a baseline", s)
	default:
		return "", fmt.Errorf("unknown scheme %q (hydra | hydra-aggressive | hydra-tmax | global-tmax)", s)
	}
}

// ParseHeuristic maps the CLI/wire spelling of a partitioning
// heuristic (the same strings Heuristic.String prints) to its value.
func ParseHeuristic(s string) (PartitionHeuristic, error) {
	for _, h := range []PartitionHeuristic{BestFit, FirstFit, WorstFit, NextFit} {
		if h.String() == s {
			return h, nil
		}
	}
	return 0, fmt.Errorf("unknown heuristic %q (best-fit | first-fit | worst-fit | next-fit)", s)
}

// Analyzer is the long-lived entry point to the HYDRA-C analysis
// pipeline: validate → partition (when the RT tasks arrive unassigned)
// → Algorithm 1 period selection → configured baselines → optional
// simulation. It is immutable after New and safe for concurrent use;
// one Analyzer is meant to serve many requests, amortising its report
// cache across repeated admission traffic.
type Analyzer struct {
	heuristic PartitionHeuristic
	opts      Options
	baselines []Scheme
	simulate  bool
	simCfg    SimConfig
	workers   int
	cache     *lru.Cache[string, *Report]
}

// AnalyzerOption configures an Analyzer at construction.
type AnalyzerOption func(*Analyzer) error

// WithHeuristic selects the bin-packing heuristic used when a set
// arrives with unpartitioned RT tasks (default BestFit, the paper's
// choice).
func WithHeuristic(h PartitionHeuristic) AnalyzerOption {
	return func(a *Analyzer) error {
		switch h {
		case BestFit, FirstFit, WorstFit, NextFit:
			a.heuristic = h
			return nil
		default:
			return fmt.Errorf("unknown partition heuristic %v", h)
		}
	}
}

// WithOptions tunes Algorithm 1 (carry-in mode, search strategy); the
// zero value is the paper's configuration.
func WithOptions(opt Options) AnalyzerOption {
	return func(a *Analyzer) error {
		a.opts = opt
		return nil
	}
}

// WithBaselines adds comparison schemes to every report, in the given
// order.
func WithBaselines(schemes ...Scheme) AnalyzerOption {
	return func(a *Analyzer) error {
		for _, s := range schemes {
			if _, err := ParseScheme(string(s)); err != nil {
				return err
			}
		}
		a.baselines = append(a.baselines, schemes...)
		return nil
	}
}

// WithSimulation makes the Analyzer simulate every admitted set under
// cfg and attach the summary to the report. cfg.Seed keeps runs
// deterministic.
func WithSimulation(cfg SimConfig) AnalyzerOption {
	return func(a *Analyzer) error {
		if cfg.Horizon <= 0 {
			return fmt.Errorf("simulation horizon must be positive, got %d", cfg.Horizon)
		}
		a.simulate = true
		a.simCfg = cfg
		return nil
	}
}

// WithCache keeps the canonical reports of the n most recently
// analysed task sets, keyed by TaskSet.Hash. n <= 0 disables caching
// (the default).
func WithCache(n int) AnalyzerOption {
	return func(a *Analyzer) error {
		a.cache = lru.New[string, *Report](n)
		return nil
	}
}

// WithBatchWorkers fixes the AnalyzeBatch worker-pool size; 0 (the
// default) uses GOMAXPROCS. Results are identical at any value.
func WithBatchWorkers(n int) AnalyzerOption {
	return func(a *Analyzer) error {
		a.workers = n
		return nil
	}
}

// New builds an Analyzer from functional options. The zero
// configuration runs exactly the paper's pipeline: best-fit
// partitioning when needed, Algorithm 1 with the dominance carry-in
// bound, no baselines, no simulation, no cache.
func New(options ...AnalyzerOption) (*Analyzer, error) {
	a := &Analyzer{heuristic: BestFit}
	for _, opt := range options {
		if err := opt(a); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// Analyze runs the full pipeline on ts and returns its report. The
// input set is never modified. ctx cancels the analysis between
// pipeline stages, between period-search probes, and periodically
// inside the simulator; the first observed ctx.Err() is returned.
//
// The returned report is the caller's to keep: it never aliases cache
// state. FromCache and Timing describe this call; everything else is
// canonical (identical for identical input).
func (a *Analyzer) Analyze(ctx context.Context, ts *TaskSet) (*Report, error) {
	start := time.Now()
	rep, tm, cached, err := a.analyzeShared(ctx, ts)
	if err != nil {
		return nil, err
	}
	out := rep.Clone()
	if tm == nil {
		tm = &Timing{}
	}
	tm.TotalNS = time.Since(start).Nanoseconds()
	out.Timing = tm
	out.FromCache = cached
	return out, nil
}

// AnalyzeBatch analyses many sets in parallel over the deterministic
// sweep engine: reports arrive in input order and are bit-identical
// at any worker count (they carry no Timing and never set FromCache).
// Any per-set error aborts the batch; an unschedulable set is not an
// error — its report says so.
func (a *Analyzer) AnalyzeBatch(ctx context.Context, sets []*TaskSet) ([]*Report, error) {
	if len(sets) == 0 {
		return nil, nil
	}
	type slot struct {
		idx int
		rep *Report
	}
	partial, err := sweep.Run(
		sweep.Config{Groups: len(sets), PerGroup: 1, Workers: a.workers, Context: ctx},
		func() *[]slot { return new([]slot) },
		func(p *[]slot, it sweep.Item) error {
			rep, _, _, err := a.analyzeShared(ctx, sets[it.Group])
			if err != nil {
				return fmt.Errorf("task set %d: %w", it.Group, err)
			}
			*p = append(*p, slot{idx: it.Group, rep: rep.Clone()})
			return nil
		},
		func(dst, src *[]slot) { *dst = append(*dst, *src...) },
	)
	if err != nil {
		return nil, err
	}
	out := make([]*Report, len(sets))
	for _, s := range *partial {
		out[s.idx] = s.rep
	}
	return out, nil
}

// Baseline runs a single comparison scheme on ts (partitioning the RT
// band first if needed) without the HYDRA-C selection. It backs the
// deprecated one-shot baseline functions and spot checks.
func (a *Analyzer) Baseline(ctx context.Context, ts *TaskSet, scheme Scheme) (*BaselineVerdict, error) {
	if _, err := ParseScheme(string(scheme)); err != nil {
		return nil, err
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	cp := ts
	if scheme != SchemeGlobalTMax {
		// Partitioned schemes need a placed RT band; GLOBAL-TMax
		// schedules everything globally and must keep working on sets
		// no partitioning heuristic can place.
		var err error
		if cp, _, err = a.partitioned(ctx, ts); err != nil {
			return nil, err
		}
	}
	return runBaseline(cp, scheme)
}

// analyzeShared is the cache-aware core of Analyze/AnalyzeBatch. It
// returns the canonical report (no Timing, FromCache unset) — callers
// must Clone before exposing it.
func (a *Analyzer) analyzeShared(ctx context.Context, ts *TaskSet) (*Report, *Timing, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, false, err
	}
	if err := ts.Validate(); err != nil {
		return nil, nil, false, err
	}
	key := ts.Hash()
	if rep, ok := a.cache.Get(key); ok {
		return rep, nil, true, nil
	}
	rep, tm, err := a.analyzeCanonical(ctx, ts, key)
	if err != nil {
		return nil, nil, false, err
	}
	// Two goroutines may compute the same key concurrently; both
	// arrive at the same canonical report, so the race is benign.
	a.cache.Add(key, rep)
	return rep, tm, false, nil
}

// partitioned returns a clone of ts with every RT task placed,
// running the configured heuristic when the input arrives fully
// unassigned. Mixed sets are rejected: the packing heuristic would
// silently move explicitly pinned tasks (hardware affinity is a hard
// constraint), so a set must arrive either fully placed or fully
// free.
func (a *Analyzer) partitioned(ctx context.Context, ts *TaskSet) (*TaskSet, string, error) {
	assigned, unassigned := 0, 0
	for _, t := range ts.RT {
		if t.Core < 0 {
			unassigned++
		} else {
			assigned++
		}
	}
	cp := ts.Clone()
	switch {
	case unassigned == 0:
		return cp, "", nil
	case assigned > 0:
		return nil, "", fmt.Errorf("%d of %d RT tasks are pinned and %d unassigned; pin all cores or none (the heuristic will not move pinned tasks)", assigned, len(ts.RT), unassigned)
	default:
		if err := partition.AssignCtx(ctx, cp, a.heuristic); err != nil {
			return nil, "", fmt.Errorf("partitioning RT tasks: %w", err)
		}
		return cp, a.heuristic.String(), nil
	}
}

// analyzeCanonical runs the pipeline for one uncached set.
func (a *Analyzer) analyzeCanonical(ctx context.Context, ts *TaskSet, key string) (*Report, *Timing, error) {
	tm := &Timing{}
	t0 := time.Now()
	cp, heur, err := a.partitioned(ctx, ts)
	if err != nil {
		return nil, nil, err
	}
	if heur != "" {
		tm.PartitionNS = time.Since(t0).Nanoseconds()
	}

	t0 = time.Now()
	res, err := core.SelectPeriodsCtx(ctx, cp, a.opts)
	if err != nil {
		return nil, nil, err
	}
	tm.SelectionNS = time.Since(t0).Nanoseconds()
	rep, err := a.buildReport(ctx, cp, res, heur, key, tm)
	if err != nil {
		return nil, nil, err
	}
	return rep, tm, nil
}

// buildReport shapes the canonical report for an analysed, fully
// placed set and runs the configured baseline and simulation stages.
// It is shared between the cold pipeline (analyzeCanonical) and the
// incremental session path, which is how session reports stay
// byte-identical to cold reports of the same set.
func (a *Analyzer) buildReport(ctx context.Context, cp *TaskSet, res *core.Result, heur, key string, tm *Timing) (*Report, error) {
	rep := &Report{
		Scheme:      SchemeHydraC,
		Schedulable: res.Schedulable,
		Heuristic:   heur,
		TaskSetHash: key,
		Cores:       cp.Cores,
		RT:          make([]RTAssignment, 0, len(cp.RT)),
		Tasks:       make([]SecurityVerdict, 0, len(cp.Security)),
	}
	for _, t := range cp.RT {
		rep.RT = append(rep.RT, RTAssignment{Name: t.Name, Core: t.Core})
	}
	for i, s := range cp.Security {
		v := SecurityVerdict{Name: s.Name, MaxPeriod: s.MaxPeriod, Core: -1}
		if res.Schedulable {
			v.Period, v.WCRT = res.Periods[i], res.Resp[i]
		}
		rep.Tasks = append(rep.Tasks, v)
	}

	if len(a.baselines) > 0 {
		t0 := time.Now()
		for _, scheme := range a.baselines {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := runBaseline(cp, scheme)
			if err != nil {
				return nil, err
			}
			rep.Baselines = append(rep.Baselines, *v)
		}
		tm.BaselinesNS = time.Since(t0).Nanoseconds()
	}

	if a.simulate && res.Schedulable {
		t0 := time.Now()
		out, err := sim.RunCtx(ctx, core.Apply(cp, res), a.simCfg)
		if err != nil {
			return nil, err
		}
		tm.SimulationNS = time.Since(t0).Nanoseconds()
		rep.Simulation = &SimSummary{
			Policy:                 a.simCfg.Policy.String(),
			Horizon:                out.Horizon,
			ContextSwitches:        out.ContextSwitches,
			Migrations:             out.Migrations,
			RTDeadlineMisses:       out.RTDeadlineMisses,
			SecurityDeadlineMisses: out.SecurityDeadlineMisses,
			Utilization:            out.Utilization(),
		}
	}
	return rep, nil
}

// runBaseline executes one comparison scheme on an already
// partitioned set and shapes its verdict.
func runBaseline(ts *TaskSet, scheme Scheme) (*BaselineVerdict, error) {
	v := &BaselineVerdict{Scheme: scheme}
	switch scheme {
	case SchemeHydra, SchemeHydraAggressive, SchemeHydraTMax:
		var res *baseline.PartitionedResult
		var err error
		switch scheme {
		case SchemeHydra:
			res, err = baseline.Hydra(ts)
		case SchemeHydraAggressive:
			res, err = baseline.HydraAggressive(ts)
		default:
			res, err = baseline.HydraTMax(ts)
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", scheme, err)
		}
		v.Schedulable = res.Schedulable
		if res.Schedulable {
			for _, t := range ts.RT {
				v.Placement = append(v.Placement, RTAssignment{Name: t.Name, Core: t.Core})
			}
			for i, s := range ts.Security {
				v.Tasks = append(v.Tasks, SecurityVerdict{
					Name: s.Name, Period: res.Periods[i], WCRT: res.Resp[i],
					MaxPeriod: s.MaxPeriod, Core: res.Cores[i],
				})
			}
		}
	case SchemeGlobalTMax:
		res, err := baseline.GlobalTMax(ts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", scheme, err)
		}
		v.Schedulable = res.Schedulable
		for i, t := range ts.RT {
			v.RT = append(v.RT, RTVerdict{Name: t.Name, WCRT: res.RTResp[i], Deadline: t.Deadline})
		}
		for i, s := range ts.Security {
			v.Tasks = append(v.Tasks, SecurityVerdict{
				Name: s.Name, Period: s.MaxPeriod, WCRT: res.SecResp[i],
				MaxPeriod: s.MaxPeriod, Core: -1,
			})
		}
	default:
		return nil, fmt.Errorf("unknown scheme %q", scheme)
	}
	return v, nil
}
