// Package store is the durable session tier of hydrad: a lifecycle
// manager that gives every admission session (hydrac.Session) a
// directory of snapshot + write-ahead-log state and recovers all of
// them by replay on boot. Durability rides on the engine's own
// semantics — Session.Log() is a committed delta log with
// deterministic, oracle-pinned replay — so recovery is bit-identical
// by construction: a recovered session re-analyses the same placed
// set through the same equations and must produce byte-identical
// reports, which the crash-injection tests assert against
// uninterrupted sessions.
//
// Per-session on-disk layout (<root>/<id>/):
//
//	snap-<gen>.json   snapshot: placed task set + placement cursor
//	g<gen>-NNNNNNNN.wal  CRC-framed segments of committed deltas
//
// Commit ordering: the session's commit hook appends the delta to the
// WAL (and fsyncs) BEFORE the engine installs the new state, so an
// acknowledged commit is always on disk; a crash between append and
// acknowledgement replays a delta the client never heard about, which
// is harmless — replay converges on the same committed state. Every
// CompactEvery commits the hook writes a fresh snapshot of the
// post-delta state and rotates to a new WAL generation; recovery
// always loads the highest generation with a valid snapshot, so a
// crash anywhere inside compaction leaves either the old or the new
// generation whole.
package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"hydrac"
	"hydrac/internal/faultfs"
	"hydrac/internal/lru"
	"hydrac/internal/wal"
)

// ErrNotFound reports an id with no session on disk or in memory.
var ErrNotFound = errors.New("store: no such session")

// ErrExists reports a Create of an id that already has a session.
var ErrExists = errors.New("store: session already exists")

// ErrStorage marks commit failures caused by the persistence layer
// (WAL append, rotation) rather than by the admission input — callers
// surface these as server faults, not client errors.
var ErrStorage = errors.New("store: storage failure")

// ErrDegraded marks mutations rejected because the session is in
// degraded read-only mode: an earlier storage fault (failed fsync,
// compaction that lost its log) means new commits could not be made
// durable, so they are refused outright while reads keep working.
// Wraps ErrStorage, so errors.Is(err, ErrStorage) still holds; a
// background probe (or an explicit Probe call) re-arms the session
// from disk once the storage heals. Callers surface this as 503, not
// 500: the condition is expected to clear.
var ErrDegraded = fmt.Errorf("%w: degraded", ErrStorage)

// DefaultMaxLive bounds materialised engines when Options.MaxLive is
// unset: live sessions hold analysed state and kernel scratch, so the
// store keeps a bounded working set warm and re-hydrates the rest
// from disk on demand.
const DefaultMaxLive = 256

// DefaultCompactEvery is the WAL record count that triggers a
// snapshot + log rotation.
const DefaultCompactEvery = 256

// DefaultProbeEvery is the background re-arm interval for degraded
// sessions: long enough that a genuinely sick disk is not hammered,
// short enough that a transient hiccup (full disk freed, remount)
// clears without operator action.
const DefaultProbeEvery = 5 * time.Second

// Options tunes a Store.
type Options struct {
	// MaxLive bounds live engines (LRU); <= 0 means DefaultMaxLive.
	// Evicted sessions stay fully recoverable on disk.
	MaxLive int
	// NoSync disables the per-commit fsync: commits are durable only
	// against process crashes (the OS holds the bytes), not power
	// loss. For benchmarks and tests; production keeps it false.
	NoSync bool
	// CompactEvery rotates a session's WAL into a fresh snapshot +
	// empty log once it holds this many records; <= 0 means
	// DefaultCompactEvery.
	CompactEvery int
	// SegmentBytes is the WAL segment size; <= 0 uses the WAL default.
	SegmentBytes int64
	// ProbeEvery is how often a background goroutine attempts to
	// re-arm degraded sessions from disk; 0 means DefaultProbeEvery,
	// negative disables the loop (tests drive Probe directly).
	ProbeEvery time.Duration
	// FS is the filesystem seam snapshots and WALs write through; nil
	// means the real OS. The chaos suite injects faults here.
	FS faultfs.FS
	// Logf receives operational messages (compaction failures, cleanup
	// of half-created sessions); nil is quiet.
	Logf func(format string, args ...any)
}

// Store manages durable sessions under one root directory. All
// methods are safe for concurrent use.
//
// Lock order: the live-set LRU (and s.mu) are always taken before a
// session entry's lock, and entry lock holders never call back into
// the LRU — commit hooks run under an entry read lock and touch only
// that entry's WAL.
type Store struct {
	dir string
	a   *hydrac.Analyzer
	opt Options
	fs  faultfs.FS

	mu      sync.Mutex
	closed  bool
	entries map[string]*entry
	// movedIDs tombstones sessions handed off to another node
	// (Detach): Acquire answers ErrMoved for them so the HTTP layer
	// redirects instead of 404ing. In-memory only — after a restart
	// the id is simply absent, which is equally true.
	movedIDs map[string]struct{}
	// importTokens remembers the handoff token each imported session
	// arrived with, so a retried import can be told apart from a
	// genuine id conflict and the sender's confirm probe can be
	// answered. Entries survive a Detach — "your handoff committed
	// here" stays true after the session moves on — and reload lazily
	// from the session dir's token file after a restart.
	importTokens map[string]string
	// live keeps the most recently used entries materialised; eviction
	// closes the entry's engine + WAL handle, leaving disk state as
	// the only copy.
	live *lru.Cache[string, *entry]

	// stop/wg manage the background degraded-session probe loop.
	stop chan struct{}
	wg   sync.WaitGroup
}

// entry is one session's lifecycle state. sess/wal/gen are guarded by
// mu: operations hold the read lock (hooks included), while eviction
// and re-hydration hold the write lock, so a session is never torn
// down mid-request and never materialised twice.
type entry struct {
	id  string
	dir string

	mu   sync.RWMutex
	sess *hydrac.Session
	wal  *wal.Log
	gen  uint64
	// moved marks a session handed off to another node (Detach): its
	// disk state is gone and Acquire answers ErrMoved so the HTTP
	// layer can redirect to the new owner instead of 404ing.
	moved bool

	// degMu guards the degraded state separately from mu, because the
	// commit hook (which marks it) runs with mu read-held while the
	// probe loop and health reads inspect it from outside. degraded
	// non-nil means the session is read-only: an earlier storage fault
	// left the live WAL unusable (failed append) or superseded (failed
	// rotation), so further commits would be lost — they are refused
	// with ErrDegraded until a re-hydration from disk re-arms the
	// entry. Reads stay served from the committed in-memory state,
	// which the aborted commit never touched.
	degMu    sync.Mutex
	degraded error
	degSince time.Time
}

// fault returns the entry's degradation, or nil when healthy.
func (e *entry) fault() error {
	e.degMu.Lock()
	defer e.degMu.Unlock()
	return e.degraded
}

// markDegraded flips the entry read-only. The first fault wins: a
// probe failure must not overwrite the root cause with its own.
func (e *entry) markDegraded(err error) {
	e.degMu.Lock()
	defer e.degMu.Unlock()
	if e.degraded == nil {
		e.degraded, e.degSince = err, time.Now()
	}
}

func (e *entry) clearDegraded() {
	e.degMu.Lock()
	defer e.degMu.Unlock()
	e.degraded, e.degSince = nil, time.Time{}
}

// Open loads the store rooted at dir, creating it if absent, and
// recovers every session on disk by replay — each session's latest
// valid snapshot is re-analysed and its WAL deltas re-admitted
// through a fresh engine, repairing torn WAL tails along the way. A
// session that fails recovery fails Open: serving a partial fleet
// would silently drop committed admission state.
func Open(dir string, a *hydrac.Analyzer, opt Options) (*Store, error) {
	if opt.MaxLive <= 0 {
		opt.MaxLive = DefaultMaxLive
	}
	if opt.CompactEvery <= 0 {
		opt.CompactEvery = DefaultCompactEvery
	}
	if opt.ProbeEvery == 0 {
		opt.ProbeEvery = DefaultProbeEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating root: %w", err)
	}
	s := &Store{dir: dir, a: a, opt: opt, fs: faultfs.Default(opt.FS), entries: map[string]*entry{}, movedIDs: map[string]struct{}{}, importTokens: map[string]string{}, stop: make(chan struct{})}
	s.live = lru.New[string, *entry](opt.MaxLive)
	s.live.OnEvict(func(id string, e *entry) { e.close() })

	dirents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scanning root: %w", err)
	}
	ctx := context.Background()
	for _, de := range dirents {
		if !de.IsDir() {
			continue
		}
		id := de.Name()
		if !validID(id) {
			s.logf("store: ignoring non-session directory %q", id)
			continue
		}
		e := &entry{id: id, dir: filepath.Join(dir, id)}
		if !hasSnapshot(e.dir) {
			// A crash between mkdir and the first snapshot write: the
			// session never existed durably. Clean it up.
			s.logf("store: removing half-created session %s", id)
			_ = os.RemoveAll(e.dir)
			continue
		}
		e.mu.Lock()
		err := s.rehydrate(ctx, e)
		e.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("store: recovering session %s: %w", id, err)
		}
		s.entries[id] = e
		// The LRU caps how many recovered engines stay warm; evicted
		// ones were still verified by the replay above.
		s.live.Add(id, e)
	}
	if opt.ProbeEvery > 0 {
		s.wg.Add(1)
		go s.probeLoop()
	}
	return s, nil
}

// probeLoop periodically re-arms degraded sessions until Close.
func (s *Store) probeLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opt.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			if rearmed, still := s.Probe(context.Background()); rearmed > 0 || still > 0 {
				s.logf("store: probe re-armed %d degraded sessions, %d still degraded", rearmed, still)
			}
		}
	}
}

// Probe attempts to re-arm every degraded session NOW: each one's live
// state is torn down and re-hydrated from disk (latest snapshot + WAL
// replay, the same path a restart takes), which both verifies the
// storage is healthy again and restores the exact committed state —
// the aborted commits that degraded the session were never installed
// in memory or on disk, so the re-hydrated session is bit-identical
// to the committed history. Returns how many sessions were re-armed
// and how many remain degraded. The background loop calls this every
// ProbeEvery; tests and operators can call it directly.
func (s *Store) Probe(ctx context.Context) (rearmed, degraded int) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, 0
	}
	var sick []*entry
	for _, e := range s.entries {
		if e.fault() != nil {
			sick = append(sick, e)
		}
	}
	s.mu.Unlock()
	for _, e := range sick {
		// Lock order: live LRU before the entry lock.
		s.live.Add(e.id, e)
		e.mu.Lock()
		if e.fault() == nil { // raced with another probe or rehydration
			e.mu.Unlock()
			continue
		}
		// Stage the replacement BEFORE tearing anything down: while the
		// disk is still sick the old (degraded but readable) state must
		// keep serving reads, so a failed probe leaves it untouched.
		sess, l, gen, stale, err := s.loadFromDisk(ctx, e)
		if err != nil {
			e.mu.Unlock()
			s.logf("store: session %s still degraded after probe: %v", e.id, err)
			degraded++
			continue
		}
		if e.wal != nil {
			_ = e.wal.Close()
		}
		s.install(e, sess, l, gen, stale)
		e.mu.Unlock()
		s.logf("store: session %s re-armed from disk after degradation", e.id)
		rearmed++
	}
	return rearmed, degraded
}

// Health summarises the store's storage state for /healthz: how many
// sessions are currently degraded (read-only) and one representative
// reason.
type Health struct {
	// Sessions is the total session count (live or not).
	Sessions int
	// Degraded counts sessions refusing mutations.
	Degraded int
	// Reason is one degraded session's fault, empty when healthy.
	Reason string
	// Since is the oldest degradation's start time.
	Since time.Time
}

// OK reports whether every session accepts mutations.
func (h Health) OK() bool { return h.Degraded == 0 }

// Health reports the store's current storage health.
func (s *Store) Health() Health {
	s.mu.Lock()
	entries := make([]*entry, 0, len(s.entries))
	for _, e := range s.entries {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	h := Health{Sessions: len(entries)}
	for _, e := range entries {
		e.degMu.Lock()
		if e.degraded != nil {
			h.Degraded++
			if h.Reason == "" || e.degSince.Before(h.Since) {
				h.Reason = e.degraded.Error()
				h.Since = e.degSince
			}
		}
		e.degMu.Unlock()
	}
	return h
}

// Len returns the number of sessions the store holds (live or not).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Has reports whether the store currently holds id (live or cold on
// disk). A handed-off session is not held.
func (s *Store) Has(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[id]
	return ok
}

// IDs returns every session id, sorted.
func (s *Store) IDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.entries))
	for id := range s.entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Create opens a new durable session over base: the session is
// analysed first (an infeasible base never touches disk), then its
// placed set and cursor are snapshotted and an empty WAL generation
// is created, and only then is the commit hook attached. Returns the
// initial report.
func (s *Store) Create(ctx context.Context, id string, base *hydrac.TaskSet) (*hydrac.Report, error) {
	if !validID(id) {
		return nil, fmt.Errorf("store: invalid session id %q (want 1-128 chars of [a-zA-Z0-9_-])", id)
	}
	e := &entry{id: id, dir: filepath.Join(s.dir, id)}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("store: closed")
	}
	if _, ok := s.entries[id]; ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrExists, id)
	}
	s.entries[id] = e
	s.mu.Unlock()

	e.mu.Lock()
	rep, err := s.createLocked(ctx, e, base)
	e.mu.Unlock()
	if err != nil {
		s.mu.Lock()
		delete(s.entries, id)
		s.mu.Unlock()
		_ = os.RemoveAll(e.dir)
		return nil, err
	}
	s.live.Add(id, e)
	return rep, nil
}

// createLocked is the body of Create; e.mu must be write-held. Disk
// failures are wrapped in ErrStorage — the base set was fine, the
// storage was not — so the HTTP layer answers 503, not 422.
func (s *Store) createLocked(ctx context.Context, e *entry, base *hydrac.TaskSet) (*hydrac.Report, error) {
	sess, rep, err := s.a.NewSession(ctx, base)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(e.dir, 0o755); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStorage, err)
	}
	if err := writeSnapshot(s.fs, e.dir, 0, sess.Set(), sess.PlacementCursor()); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStorage, err)
	}
	l, _, err := wal.Open(e.dir, s.walOptions(0))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStorage, err)
	}
	e.sess, e.wal, e.gen = sess, l, 0
	sess.SetCommitHook(s.hookFor(e))
	return rep, nil
}

// Acquire returns the live session for id, re-hydrating it from disk
// if it was evicted, plus a release func the caller must invoke once
// done with THIS operation. The handle is valid only until release:
// holding it longer would race with eviction.
func (s *Store) Acquire(ctx context.Context, id string) (*hydrac.Session, func(), error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, nil, errors.New("store: closed")
	}
	e := s.entries[id]
	_, wasMoved := s.movedIDs[id]
	s.mu.Unlock()
	if e == nil {
		if wasMoved {
			return nil, nil, fmt.Errorf("%w: %s", ErrMoved, id)
		}
		return nil, nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	// Touch the live set first (lock order: LRU before entry); this
	// may synchronously evict other entries.
	s.live.Add(id, e)
	for {
		e.mu.RLock()
		if e.moved {
			e.mu.RUnlock()
			return nil, nil, fmt.Errorf("%w: %s", ErrMoved, id)
		}
		if e.sess != nil {
			sess := e.sess
			return sess, e.mu.RUnlock, nil
		}
		e.mu.RUnlock()
		e.mu.Lock()
		var err error
		switch {
		case e.moved:
			err = fmt.Errorf("%w: %s", ErrMoved, id)
		case e.sess == nil:
			err = s.rehydrate(ctx, e)
		}
		e.mu.Unlock()
		if err != nil {
			if errors.Is(err, ErrMoved) {
				return nil, nil, err
			}
			return nil, nil, fmt.Errorf("store: re-hydrating session %s: %w", id, err)
		}
		// Loop: an eviction storm could tear the session down again
		// between the Unlock and the RLock above.
	}
}

// Close flushes and closes every live session. The store must not be
// used afterwards. With per-commit fsync (the default) there is
// nothing buffered to lose even without Close; it exists so graceful
// shutdown releases file handles and flushes NoSync stores.
func (s *Store) Close() error {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	entries := make([]*entry, 0, len(s.entries))
	for _, e := range s.entries {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	if !alreadyClosed {
		close(s.stop)
		s.wg.Wait()
	}
	for _, e := range entries {
		e.close()
	}
	return nil
}

// close tears down the entry's live state (engine + WAL handle). Disk
// state remains authoritative; a later Acquire re-hydrates.
func (e *entry) close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.wal != nil {
		_ = e.wal.Close()
	}
	e.sess, e.wal = nil, nil
}

// rehydrate materialises e from disk: load the latest valid snapshot,
// open (and tail-repair) its WAL generation, re-admit every logged
// delta through a fresh engine, then attach the commit hook — after
// replay, so replayed deltas are not re-logged. e.mu must be
// write-held.
func (s *Store) rehydrate(ctx context.Context, e *entry) error {
	sess, l, gen, stale, err := s.loadFromDisk(ctx, e)
	if err != nil {
		return err
	}
	s.install(e, sess, l, gen, stale)
	return nil
}

// loadFromDisk stages a fresh engine + WAL from e's directory without
// touching e's live fields, so callers (Probe) can keep serving the
// old state when staging fails. e.mu must be write-held (it guards the
// directory against concurrent compaction).
func (s *Store) loadFromDisk(ctx context.Context, e *entry) (*hydrac.Session, *wal.Log, uint64, []uint64, error) {
	gen, set, cursor, stale, err := readLatestSnapshot(e.dir)
	if err != nil {
		return nil, nil, 0, nil, err
	}
	l, recs, err := wal.Open(e.dir, s.walOptions(gen))
	if err != nil {
		return nil, nil, 0, nil, err
	}
	sess, _, err := s.a.NewSessionWith(ctx, set, hydrac.SessionConfig{NextFitCursor: cursor})
	if err != nil {
		l.Close()
		return nil, nil, 0, nil, fmt.Errorf("re-analysing snapshot: %w", err)
	}
	for i, rec := range recs {
		d, err := hydrac.DecodeDelta(bytes.NewReader(rec))
		if err != nil {
			l.Close()
			return nil, nil, 0, nil, fmt.Errorf("WAL record %d: %w", i, err)
		}
		_, admitted, err := sess.Admit(ctx, *d)
		if err != nil {
			l.Close()
			return nil, nil, 0, nil, fmt.Errorf("replaying WAL record %d: %w", i, err)
		}
		if !admitted {
			// The delta committed when it was logged but is denied
			// now: the analyzer configuration must have drifted (e.g.
			// a different heuristic). Refusing is the only safe move —
			// this state was acknowledged to a client.
			l.Close()
			return nil, nil, 0, nil, fmt.Errorf("replay diverged at WAL record %d: a logged delta was denied (analyzer configuration changed since this session was written?)", i)
		}
	}
	return sess, l, gen, stale, nil
}

// install makes a staged session e's live state. e.mu must be
// write-held; any previous live WAL handle must already be closed.
func (s *Store) install(e *entry, sess *hydrac.Session, l *wal.Log, gen uint64, stale []uint64) {
	e.sess, e.wal, e.gen = sess, l, gen
	// A successful re-hydration proves the disk serves reads and a
	// fresh WAL accepts appends again: the session leaves degraded
	// mode (it may never have been in it — this is also the plain
	// eviction re-materialisation path).
	e.clearDegraded()
	sess.SetCommitHook(s.hookFor(e))
	// Older generations are superseded; removing them is cleanup, not
	// correctness (recovery always picks the highest valid snapshot).
	for _, g := range stale {
		s.removeGeneration(e.dir, g)
	}
}

// hookFor builds e's commit hook: append-and-fsync the delta, then
// compact if the generation is full. Runs under the engine lock (so
// appends are in commit order) with e.mu read-held by the operation
// that triggered it.
func (s *Store) hookFor(e *entry) hydrac.CommitHook {
	var buf bytes.Buffer
	return func(d hydrac.Delta, state *hydrac.TaskSet, cursor int) error {
		if err := e.fault(); err != nil {
			return fmt.Errorf("%w: session is read-only after a storage fault (a probe re-arms it once the disk heals): %v", ErrDegraded, err)
		}
		buf.Reset()
		if err := hydrac.EncodeDelta(&buf, &d); err != nil {
			return fmt.Errorf("%w: %v", ErrStorage, err)
		}
		if err := e.wal.Append(buf.Bytes()); err != nil {
			// The failed Log must not be appended to again (it may hold
			// a torn frame): flip the session read-only. The commit this
			// hook guards is aborted, so memory still matches the
			// committed on-disk history, and re-hydration (which repairs
			// the torn tail) restores an identical session.
			e.markDegraded(fmt.Errorf("WAL append failed: %v", err))
			s.logf("store: session %s: WAL append failed, session degraded to read-only: %v", e.id, err)
			return fmt.Errorf("%w: %v", ErrStorage, err)
		}
		if e.wal.Count() >= s.opt.CompactEvery {
			s.compact(e, state, cursor)
		}
		return nil
	}
}

// compact rotates e onto a fresh generation: snapshot the post-delta
// state, open an empty WAL under the next generation prefix, then
// delete the superseded files. Failures never affect the commit that
// triggered compaction — the delta is already durable in the old
// generation. A snapshot failure is retried at the next commit (the
// old generation is still whole and still current); a failure AFTER
// the new snapshot became authoritative flips the session into
// degraded read-only mode — further live commits would land in a log
// recovery no longer reads — until a probe re-arms it from the new
// generation.
func (s *Store) compact(e *entry, state *hydrac.TaskSet, cursor int) {
	next := e.gen + 1
	if err := writeSnapshot(s.fs, e.dir, next, state, cursor); err != nil {
		// Old generation still whole and still current: skip this
		// compaction and retry at the next commit.
		s.logf("store: session %s: compaction snapshot failed (will retry): %v", e.id, err)
		return
	}
	l, _, err := wal.Open(e.dir, s.walOptions(next))
	if err != nil {
		e.markDegraded(fmt.Errorf("opening WAL generation %d after its snapshot was written: %v", next, err))
		s.logf("store: session %s: compaction lost its log, session degraded to read-only: %v", e.id, err)
		return
	}
	old, oldGen := e.wal, e.gen
	e.wal, e.gen = l, next
	_ = old.Close()
	s.removeGeneration(e.dir, oldGen)
}

// removeGeneration deletes one superseded generation's snapshot and
// WAL segments, best-effort.
func (s *Store) removeGeneration(dir string, gen uint64) {
	if err := s.fs.Remove(snapshotPath(dir, gen)); err != nil && !errors.Is(err, os.ErrNotExist) {
		s.logf("store: removing %s: %v", snapshotPath(dir, gen), err)
	}
	if err := wal.RemoveGeneration(s.fs, dir, genPrefix(gen)); err != nil {
		s.logf("store: removing WAL generation %d in %s: %v", gen, dir, err)
	}
}

func (s *Store) walOptions(gen uint64) wal.Options {
	return wal.Options{Prefix: genPrefix(gen), NoSync: s.opt.NoSync, SegmentBytes: s.opt.SegmentBytes, FS: s.fs}
}

func (s *Store) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// genPrefix names generation gen's WAL segment files.
func genPrefix(gen uint64) string { return fmt.Sprintf("g%d-", gen) }

// validID accepts ids that are safe as directory names everywhere:
// 1-128 characters of [a-zA-Z0-9_-]. Session ids minted by hydrad
// (32 hex chars) always pass.
func validID(id string) bool {
	if len(id) == 0 || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}
