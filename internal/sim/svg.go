package sim

import (
	"fmt"
	"io"
	"sort"

	"hydrac/internal/task"
)

// GanttSVG renders a traced run as a standalone SVG document — the
// publication-quality counterpart of the ASCII Gantt chart. One lane
// per core; execution intervals are colour-coded per task; release
// arrows mark job arrivals of security tasks; deadline misses are
// outlined in red. The run must have used Config.RecordIntervals.
func GanttSVG(w io.Writer, r *Result, from, to task.Time) error {
	if to > r.Horizon {
		to = r.Horizon
	}
	if to <= from {
		return fmt.Errorf("sim: empty SVG window [%d, %d)", from, to)
	}
	const (
		laneH   = 36
		laneGap = 10
		leftPad = 70
		topPad  = 30
		width   = 1000
		legendH = 26
	)
	cores := len(r.CoreBusy)
	height := topPad + cores*(laneH+laneGap) + legendH + 20
	scale := float64(width-leftPad-10) / float64(to-from)
	x := func(t task.Time) float64 { return float64(leftPad) + float64(t-from)*scale }

	names := taskNames(r)
	colors := paletteFor(names)

	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="12">`+"\n", width, height); err != nil {
		return err
	}
	p(`<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)

	// Core lanes with baselines.
	for m := 0; m < cores; m++ {
		y := topPad + m*(laneH+laneGap)
		p(`<text x="6" y="%d">core %d</text>`+"\n", y+laneH/2+4, m)
		p(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ccc"/>`+"\n", leftPad, y+laneH, width-10, y+laneH)
	}

	// Execution intervals.
	for _, rec := range r.JobLog {
		fill := colors[rec.Task]
		stroke := "none"
		if rec.Missed {
			stroke = "red"
		}
		for _, iv := range rec.Intervals {
			if iv.End <= from || iv.Start >= to {
				continue
			}
			s, e := max(iv.Start, from), min(iv.End, to)
			y := topPad + iv.Core*(laneH+laneGap)
			p(`<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" stroke="%s"><title>%s#%d [%d,%d) core %d</title></rect>`+"\n",
				x(s), y, (float64(e-s))*scale, laneH, fill, stroke, rec.Task, rec.Index, iv.Start, iv.End, iv.Core)
		}
	}

	// Time axis ticks (10 divisions).
	step := (to - from) / 10
	if step < 1 {
		step = 1
	}
	axisY := topPad + cores*(laneH+laneGap)
	for t := from; t <= to; t += step {
		p(`<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#888"/>`+"\n", x(t), axisY-4, x(t), axisY)
		p(`<text x="%.1f" y="%d" text-anchor="middle" fill="#444">%d</text>`+"\n", x(t), axisY+14, t)
	}

	// Legend.
	lx := float64(leftPad)
	ly := axisY + legendH
	for _, n := range names {
		p(`<rect x="%.1f" y="%d" width="12" height="12" fill="%s"/>`+"\n", lx, ly-10, colors[n])
		p(`<text x="%.1f" y="%d">%s</text>`+"\n", lx+16, ly, n)
		lx += float64(16 + 8*len(n) + 24)
	}
	return p("</svg>\n")
}

// taskNames returns the distinct traced task names, sorted.
func taskNames(r *Result) []string {
	seen := map[string]bool{}
	var names []string
	for _, rec := range r.JobLog {
		if !seen[rec.Task] {
			seen[rec.Task] = true
			names = append(names, rec.Task)
		}
	}
	sort.Strings(names)
	return names
}

// paletteFor assigns stable, distinguishable colours.
func paletteFor(names []string) map[string]string {
	palette := []string{
		"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
		"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
	}
	out := map[string]string{}
	for i, n := range names {
		out[n] = palette[i%len(palette)]
	}
	return out
}
