package hydradhttp_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hydrac"
	"hydrac/internal/hydradhttp"
	"hydrac/internal/rover"
	"hydrac/internal/store"
)

func baseBody(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := hydrac.EncodeTaskSet(&buf, rover.TaskSet()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func admitBody(t *testing.T, k int) []byte {
	t.Helper()
	d := hydrac.Delta{AddSecurity: []hydrac.SecurityTask{{
		Name: fmt.Sprintf("mon%02d", k), WCET: 1, MaxPeriod: 900000, Core: -1, Priority: 1000 + k,
	}}}
	var buf bytes.Buffer
	if err := hydrac.EncodeDelta(&buf, &d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func post(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func createSession(t *testing.T, srvURL string) string {
	t.Helper()
	resp, body := post(t, srvURL+"/v1/session", baseBody(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create session: %d %s", resp.StatusCode, body)
	}
	var cr struct {
		SessionID string `json:"session_id"`
	}
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.SessionID == "" {
		t.Fatalf("no session id in %s", body)
	}
	return cr.SessionID
}

// In memory mode an evicted session answers 410 Gone with a body that
// names the cause — distinct from the bare 404 of an id that never
// existed — and the eviction is logged.
func TestMemoryModeEvictionSurfacesGone(t *testing.T) {
	a, err := hydrac.New()
	if err != nil {
		t.Fatal(err)
	}
	var logs bytes.Buffer
	// MaxSessions 1 falls below the sharded store's minimum shard
	// capacity, so it degrades to a single LRU of capacity 1: the
	// second create always evicts the first.
	srv := httptest.NewServer(hydradhttp.NewHandler(hydradhttp.Config{
		Analyzer: a, MaxSessions: 1, CacheSize: 8,
		Logf: func(format string, args ...any) { fmt.Fprintf(&logs, format+"\n", args...) },
	}))
	defer srv.Close()

	first := createSession(t, srv.URL)
	second := createSession(t, srv.URL)

	resp, body := get(t, srv.URL+"/v1/session/"+first)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("evicted session: got %d %s, want 410", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "evicted") || !strings.Contains(string(body), "-data-dir") {
		t.Fatalf("410 body does not explain the eviction: %s", body)
	}
	if !strings.Contains(logs.String(), "evicted") {
		t.Fatalf("eviction not logged: %q", logs.String())
	}
	// The survivor still serves; a never-created id is a plain 404.
	if resp, body := get(t, srv.URL+"/v1/session/"+second); resp.StatusCode != http.StatusOK {
		t.Fatalf("live session: %d %s", resp.StatusCode, body)
	}
	if resp, _ := get(t, srv.URL+"/v1/session/deadbeef"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: got %d, want 404", resp.StatusCode)
	}
}

// With a durable store behind the handler, eviction is invisible:
// the evicted session re-hydrates from disk on the next request.
func TestDurableModeEvictionIsTransparent(t *testing.T) {
	a, err := hydrac.New()
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(t.TempDir(), a, store.Options{MaxLive: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := httptest.NewServer(hydradhttp.NewHandler(hydradhttp.Config{
		Analyzer: a, MaxSessions: 1, CacheSize: 8, Store: st,
	}))
	defer srv.Close()

	first := createSession(t, srv.URL)
	resp, wantSet := get(t, srv.URL+"/v1/session/"+first)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET before eviction: %d", resp.StatusCode)
	}
	createSession(t, srv.URL) // evicts "first" from the live window

	resp, gotSet := get(t, srv.URL+"/v1/session/"+first)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET after eviction: %d %s", resp.StatusCode, gotSet)
	}
	if !bytes.Equal(gotSet, wantSet) {
		t.Fatal("re-hydrated session set differs from pre-eviction set")
	}
	// And it still accepts commits.
	resp, body := post(t, srv.URL+"/v1/session/"+first+"/admit", admitBody(t, 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admit after re-hydration: %d %s", resp.StatusCode, body)
	}
}

// The service-level restart property: a handler torn down and rebuilt
// over the same data dir serves every session byte-identically,
// including deltas committed right before the "crash".
func TestDurableModeSurvivesRestart(t *testing.T) {
	a, err := hydrac.New()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := store.Open(dir, a, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(hydradhttp.NewHandler(hydradhttp.Config{
		Analyzer: a, MaxSessions: 16, CacheSize: 8, Store: st,
	}))

	id := createSession(t, srv.URL)
	for k := 0; k < 3; k++ {
		resp, body := post(t, srv.URL+"/v1/session/"+id+"/admit", admitBody(t, k))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("admit %d: %d %s", k, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Hydra-Admitted"); got != "true" {
			t.Fatalf("admit %d: X-Hydra-Admitted = %q", k, got)
		}
	}
	resp, wantSet := get(t, srv.URL+"/v1/session/"+id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-restart GET: %d", resp.StatusCode)
	}
	// Simulate the crash: no graceful store Close — the WAL is fsynced
	// per commit, so the disk already holds everything acknowledged.
	srv.Close()

	st2, err := store.Open(dir, a, store.Options{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer st2.Close()
	srv2 := httptest.NewServer(hydradhttp.NewHandler(hydradhttp.Config{
		Analyzer: a, MaxSessions: 16, CacheSize: 8, Store: st2,
	}))
	defer srv2.Close()

	resp, gotSet := get(t, srv2.URL+"/v1/session/"+id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart GET: %d %s", resp.StatusCode, gotSet)
	}
	if !bytes.Equal(gotSet, wantSet) {
		t.Fatalf("post-restart set differs:\ngot:  %s\nwant: %s", gotSet, wantSet)
	}
	// healthz reports the durable tier.
	resp, hz := get(t, srv2.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(hz), `"durable":true`) {
		t.Fatalf("healthz does not report durable sessions: %d %s", resp.StatusCode, hz)
	}
}

// Sessions created over HTTP land on disk under their minted id, and
// the store accepts those ids (hex) while the handler rejects ids the
// store would refuse as 404, never as a panic or directory escape.
func TestDurableModePathSafety(t *testing.T) {
	a, err := hydrac.New()
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(t.TempDir(), a, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := httptest.NewServer(hydradhttp.NewHandler(hydradhttp.Config{
		Analyzer: a, MaxSessions: 4, CacheSize: 0, Store: st,
	}))
	defer srv.Close()

	id := createSession(t, srv.URL)
	if _, release, err := st.Acquire(context.Background(), id); err != nil {
		t.Fatalf("minted id %q not acquirable: %v", id, err)
	} else {
		release()
	}
	for _, evil := range []string{"..%2F..%2Fetc", "a%2Fb", "%2e%2e"} {
		resp, _ := get(t, srv.URL+"/v1/session/"+evil)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("id %q: got %d, want 404", evil, resp.StatusCode)
		}
	}
}
