package regression

import (
	"os"
	"strings"
	"testing"
)

func TestHistoryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if got, err := ReadHistory(dir, "cold-analyze"); err != nil || got != nil {
		t.Fatalf("missing history: %v, %v (want empty, nil)", got, err)
	}
	e1 := HistoryEntry{When: "2026-08-01T00:00:00Z", Label: "pr4", Goal: GoalThroughput,
		Metric: "rps", Unit: "req/s", Base: 29000, Head: 29438, Change: 0.015, Verdict: VerdictNoChange}
	e2 := HistoryEntry{When: "2026-08-07T00:00:00Z", Label: "pr6", Goal: GoalThroughput,
		Metric: "rps", Unit: "req/s", Base: 29438, Head: 31000, Change: 0.053, P: 0.008, Verdict: VerdictImproved}
	for _, e := range []HistoryEntry{e1, e2} {
		if err := AppendHistory(dir, "cold-analyze", e); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadHistory(dir, "cold-analyze")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != e1 || got[1] != e2 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	table := HistoryTable(got)
	for _, want := range []string{"pr4", "pr6", "improved", "+5.3%"} {
		if !strings.Contains(table, want) {
			t.Fatalf("history table missing %q:\n%s", want, table)
		}
	}
}

func TestHistoryMalformedLine(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(HistoryPath(dir, "bad"), []byte("{\"when\":\"x\"}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHistory(dir, "bad"); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("malformed history line: err = %v", err)
	}
}

func TestEntryFromResult(t *testing.T) {
	r := CaseResult{
		Case: "c", Goal: GoalP99, Metric: "p99_ms", Unit: "ms",
		BaseSHA: "abc", HeadSHA: "def",
		BaseMedian: 2.0, HeadMedian: 1.5, Change: -0.25, P: 0.01, Verdict: VerdictImproved,
	}
	e := EntryFromResult(r, "2026-08-07T12:00:00Z", "local")
	if e.Base != 2.0 || e.Head != 1.5 || e.Verdict != VerdictImproved || e.Label != "local" || e.BaseSHA != "abc" {
		t.Fatalf("condensed entry wrong: %+v", e)
	}
}
