// Command sweep reproduces the paper's synthetic design-space
// exploration (§5.2): Fig. 6 (achievable period distance), Fig. 7a
// (acceptance ratios) and Fig. 7b (period-vector differences), for 2-
// and 4-core platforms, plus the Table 3 generator configuration.
//
// Usage:
//
//	sweep [-fig 6|7a|7b|all] [-cores 2|4|0] [-sets N] [-seed S] [-table3]
//
// -cores 0 runs both core counts, as the paper does.
package main

import (
	"flag"
	"fmt"
	"os"

	"hydrac/internal/experiments"
	"hydrac/internal/gen"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 6 | 7a | 7b | all")
	cores := flag.Int("cores", 0, "core count: 2, 4, or 0 for both")
	sets := flag.Int("sets", 250, "task sets per utilisation group (paper: 250)")
	seed := flag.Int64("seed", 2020, "random seed")
	table3 := flag.Bool("table3", false, "print the Table 3 generator configuration and exit")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	flag.Parse()

	if *table3 {
		printTable3()
		return
	}

	var coreCounts []int
	switch {
	case *cores == 0:
		coreCounts = []int{2, 4}
	case *cores >= 2 && *cores <= 16:
		// The paper evaluates 2 and 4; larger counts are supported as
		// a scalability extension.
		coreCounts = []int{*cores}
	default:
		fmt.Fprintln(os.Stderr, "sweep: -cores must be 0 (both paper configs) or 2..16")
		os.Exit(2)
	}

	for _, m := range coreCounts {
		cfg := experiments.DefaultSweepConfig(m)
		cfg.SetsPerGroup = *sets
		cfg.Seed = *seed
		emit := func(res interface{ Render() string }) {
			if *jsonOut {
				fail(experiments.WriteJSON(os.Stdout, res))
				return
			}
			fmt.Print(res.Render())
			fmt.Println()
		}
		if *fig == "6" || *fig == "all" {
			res, err := experiments.Fig6(cfg)
			fail(err)
			emit(res)
		}
		if *fig == "7a" || *fig == "all" {
			res, err := experiments.Fig7a(cfg)
			fail(err)
			emit(res)
		}
		if *fig == "7b" || *fig == "all" {
			res, err := experiments.Fig7b(cfg)
			fail(err)
			emit(res)
		}
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func printTable3() {
	for _, m := range []int{2, 4} {
		c := gen.TableThree(m)
		fmt.Printf("Table 3 (M=%d): N_R∈[%d,%d] N_S∈[%d,%d] T_r∈[%d,%d]ms Tmax∈[%d,%d]ms security share %.0f%% groups %d sets/group %d partition %v\n",
			m, c.RTTasksMin, c.RTTasksMax, c.SecTasksMin, c.SecTasksMax,
			c.RTPeriodMin, c.RTPeriodMax, c.SecMaxPeriodMin, c.SecMaxPeriodMax,
			100*c.SecurityShare, c.Groups, c.SetsPerGroup, c.Partition)
	}
}
