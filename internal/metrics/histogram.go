package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Histogram bins float64 observations into equal-width buckets over
// [Lo, Hi); values outside the range clamp into the edge buckets. It
// renders as an ASCII bar chart — used to show detection-latency
// distributions next to the Fig. 5a means.
type Histogram struct {
	Lo, Hi float64
	counts []int
	n      int
}

// NewHistogram creates a histogram with the given bucket count.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets <= 0 || hi <= lo {
		panic(fmt.Sprintf("metrics: invalid histogram [%g, %g) x%d", lo, hi, buckets))
	}
	return &Histogram{Lo: lo, Hi: hi, counts: make([]int, buckets)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	i := int(float64(len(h.counts)) * (v - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
	h.n++
}

// AddSample folds a whole sample in.
func (h *Histogram) AddSample(s *Sample) {
	for _, v := range s.values {
		h.Add(v)
	}
}

// N returns the observation count.
func (h *Histogram) N() int { return h.n }

// Bucket returns the count of bucket i.
func (h *Histogram) Bucket(i int) int { return h.counts[i] }

// Render draws the histogram with the given maximum bar width.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	peak := 0
	for _, c := range h.counts {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	step := (h.Hi - h.Lo) / float64(len(h.counts))
	for i, c := range h.counts {
		bar := 0
		if peak > 0 {
			bar = int(math.Round(float64(width) * float64(c) / float64(peak)))
		}
		fmt.Fprintf(&b, "[%8.0f,%8.0f) %4d %s\n",
			h.Lo+float64(i)*step, h.Lo+float64(i+1)*step, c, strings.Repeat("#", bar))
	}
	return b.String()
}
