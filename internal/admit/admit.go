// Package admit implements the incremental admission engine: a live,
// continuously analysed task set that absorbs deltas (add/remove a
// task or two) without re-running the full period-selection pipeline
// from scratch. Algorithm 1 of the paper is a batch procedure; an
// admission-control service sees long runs of near-identical requests,
// so the engine keeps the analysed state warm and re-derives only what
// a delta can actually affect:
//
//   - Per-core RT fixpoints are memoized in an LRU keyed by
//     task.CoreHash — a delta that leaves a core's RT tasks untouched
//     never re-runs that core's Eq. 1 iteration.
//   - Security-band periods are warm-started through core.Hints: the
//     previous period of each surviving task is verified minimal in
//     the new context with two feasibility probes, falling back to the
//     full Algorithm 2 search per task when verification fails.
//
// Correctness is by construction, not by trust: every committed state
// is analysed by the same equations as a cold run, and the hint
// machinery provably returns the identical result (see core.Hints).
// The differential oracle corpus (internal/oracle) and the session
// tests pin the bit-for-bit equivalence against cold analyses.
package admit

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"hydrac/internal/core"
	"hydrac/internal/lru"
	"hydrac/internal/partition"
	"hydrac/internal/rta"
	"hydrac/internal/task"
)

// Config parameterises an Engine.
type Config struct {
	// Opts tunes Algorithm 1 exactly as for core.SelectPeriods.
	Opts core.Options
	// Heuristic places incoming unassigned RT tasks (and the base set,
	// when it arrives fully unassigned).
	Heuristic partition.Heuristic
	// CoreCache bounds the per-core fixpoint LRU; 0 means 8× the core
	// count (every live core plus history of recent deltas).
	CoreCache int
	// NextFitCursor seeds the next-fit placement rotation. Zero for
	// fresh sessions; a recovered session restores the cursor its
	// predecessor persisted so placements after recovery land on the
	// same cores they would have in the uninterrupted engine.
	NextFitCursor int
}

// Stats describes how much work one Apply actually did.
type Stats struct {
	// CoresChecked counts cores whose RTA fixpoint was recomputed;
	// CoresFromCache counts cores served from the memo.
	CoresChecked, CoresFromCache int
	// Selection carries the verify/search split of the period
	// selection (zero when the security band is empty).
	Selection core.ResumeStats
	// FullSelection reports that no warm-start hints were available —
	// the engine fell back to a cold-equivalent selection (first
	// analysis, or the previous committed state was unschedulable).
	FullSelection bool
}

// Outcome is the result of applying one delta.
type Outcome struct {
	// Set is the analysed candidate set (the committed state iff
	// Admitted). RT tasks are fully placed. The caller owns it.
	Set *task.Set
	// Result is the period-selection outcome over Set, in the order of
	// Set.Security.
	Result *core.Result
	// Admitted reports whether the delta was committed. A delta whose
	// resulting security band is unschedulable is denied — the
	// engine's state is unchanged — unless it is removal-only
	// (removals never worsen schedulability and must stay applicable
	// even from an unschedulable base).
	Admitted bool
	// Stats describes the incremental work done.
	Stats Stats
}

// Engine is the live admission state. All methods are safe for
// concurrent use; deltas are serialized in arrival order and the
// committed-delta log records that order for deterministic replay.
type Engine struct {
	mu    sync.Mutex
	cfg   Config
	set   *task.Set // committed state; RT fully placed
	hints map[string]task.Time
	// prior is the committed selection in priority order — the trusted
	// input of core.Hints.Prior. The engine can certify its contract by
	// construction: prior is always the bit-exact output of its own
	// last schedulable analysis, and it is only handed to the kernel
	// when the delta leaves the RT band untouched. Nil after an
	// unschedulable commit, like hints. It points into priorBuf, whose
	// backing arrays (and the ord permutation) are reused across
	// commits so the steady-state admission path rebuilds the prior
	// without allocating — the allocs-admit-delta regression case gates
	// that count.
	prior    *core.Prior
	priorBuf core.Prior
	ord      priorOrder
	// coreCache memoizes one core's Eq. 1 verdict under its CoreHash —
	// the fixpoint iteration's outcome, which is all the pipeline
	// gates on.
	coreCache *lru.Cache[string, bool]
	// scratch is the engine's reusable kernel workspace: one analysis
	// at a time (serialized by mu), re-primed per delta so
	// steady-state admissions run the Eq. 5–8 fixpoints without
	// allocating. Never handed out to callers.
	scratch *core.Scratch
	nextFit int // next-fit cursor across incremental placements
	log     []task.Delta
	// onCommit, when set, is invoked for every delta that will commit —
	// after analysis admits it, before the state installs. An error
	// aborts the commit (the delta is neither installed nor logged), so
	// a persistence layer can make "committed" mean "durable".
	onCommit func(d task.Delta, state *task.Set, cursor int) error
}

// SetOnCommit installs the commit hook. It must be called before the
// engine is shared across goroutines (a recovery manager sets it
// between replay and serving); the hook runs under the engine lock
// and must not call back into the engine or retain state (the
// committed set is engine-owned).
func (e *Engine) SetOnCommit(f func(d task.Delta, state *task.Set, cursor int) error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.onCommit = f
}

// Cursor returns the next-fit placement cursor of the committed
// state, the value Config.NextFitCursor restores.
func (e *Engine) Cursor() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.nextFit
}

// New builds an engine over base and runs the initial full analysis.
// A base whose RT tasks all arrive unassigned is partitioned with the
// configured heuristic first; mixed sets are rejected for the same
// reason Analyzer.Analyze rejects them (the heuristic will not move
// pinned tasks). The base is committed unconditionally — it describes
// the system as it already runs — even when its security band is
// unschedulable at Tmax; an RT band infeasible under Eq. 1 is an
// error, exactly as in a cold analysis.
func New(ctx context.Context, base *task.Set, cfg Config) (*Engine, *Outcome, error) {
	if err := base.Validate(); err != nil {
		return nil, nil, err
	}
	cp := base.Clone()
	assigned, unassigned := 0, 0
	for _, t := range cp.RT {
		if t.Core < 0 {
			unassigned++
		} else {
			assigned++
		}
	}
	switch {
	case unassigned == 0:
		// already placed
	case assigned > 0:
		return nil, nil, fmt.Errorf("%d of %d RT tasks are pinned and %d unassigned; pin all cores or none (the heuristic will not move pinned tasks)", assigned, len(base.RT), unassigned)
	default:
		if err := partition.AssignCtx(ctx, cp, cfg.Heuristic); err != nil {
			return nil, nil, fmt.Errorf("partitioning RT tasks: %w", err)
		}
	}
	cacheSize := cfg.CoreCache
	if cacheSize <= 0 {
		cacheSize = 8 * cp.Cores
	}
	e := &Engine{cfg: cfg, coreCache: lru.New[string, bool](cacheSize), scratch: core.NewScratch(nil), nextFit: cfg.NextFitCursor}
	out, err := e.analyse(ctx, cp, false)
	if err != nil {
		return nil, nil, err
	}
	out.Admitted = true
	e.commit(cp, out.Result)
	return e, out, nil
}

// Apply analyses the committed state with d applied and commits it if
// admitted (see Outcome.Admitted). On error — an unknown name, a
// placement failure, an RT band infeasible under Eq. 1, a validation
// failure, or a cancelled ctx — the engine state is untouched.
func (e *Engine) Apply(ctx context.Context, d task.Delta) (*Outcome, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.applyLocked(ctx, d)
}

// Update is Apply with replace semantics: every added task's name must
// already be admitted, and is removed first in the same atomic delta.
// The existence check runs under the engine lock, so it cannot race
// with concurrent removals.
func (e *Engine) Update(ctx context.Context, d task.Delta) (*Outcome, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	have := make(map[string]bool, len(e.set.RT)+len(e.set.Security))
	for _, t := range e.set.RT {
		have[t.Name] = true
	}
	for _, s := range e.set.Security {
		have[s.Name] = true
	}
	upd := task.Delta{
		Remove:      append([]string(nil), d.Remove...),
		AddRT:       d.AddRT,
		AddSecurity: d.AddSecurity,
	}
	for _, t := range d.AddRT {
		if !have[t.Name] {
			return nil, fmt.Errorf("cannot update %q: no such task in the admitted set (use Admit to add it)", t.Name)
		}
		upd.Remove = append(upd.Remove, t.Name)
	}
	for _, s := range d.AddSecurity {
		if !have[s.Name] {
			return nil, fmt.Errorf("cannot update %q: no such task in the admitted set (use Admit to add it)", s.Name)
		}
		upd.Remove = append(upd.Remove, s.Name)
	}
	return e.applyLocked(ctx, upd)
}

// applyLocked is the body of Apply; e.mu must be held.
func (e *Engine) applyLocked(ctx context.Context, d task.Delta) (*Outcome, error) {
	if d.Empty() {
		return nil, fmt.Errorf("empty delta")
	}
	cand := e.set.Clone()
	cursor := e.nextFit
	rtRemoved, err := removeTasks(cand, d.Remove)
	if err != nil {
		return nil, err
	}
	rtIdentical := !rtRemoved && len(d.AddRT) == 0
	for _, t := range d.AddRT {
		if t.Core < 0 {
			m, next, err := e.place(cand, t, cursor)
			if err != nil {
				return nil, err
			}
			t.Core, cursor = m, next
		}
		cand.RT = append(cand.RT, t)
	}
	cand.Security = append(cand.Security, d.AddSecurity...)
	if err := cand.Validate(); err != nil {
		return nil, err
	}
	out, err := e.analyse(ctx, cand, rtIdentical)
	if err != nil {
		return nil, err
	}
	out.Admitted = out.Result.Schedulable || d.RemovalOnly()
	if out.Admitted {
		// Log a private copy: the caller keeps ownership of d's slices.
		logged := task.Delta{
			Remove:      append([]string(nil), d.Remove...),
			AddRT:       append([]task.RTTask(nil), d.AddRT...),
			AddSecurity: append([]task.SecurityTask(nil), d.AddSecurity...),
		}
		if e.onCommit != nil {
			// Persistence before installation: once the hook returns,
			// the delta is durable; if it fails, the engine state (and
			// the log) stay exactly as before, so memory and disk
			// never diverge.
			if err := e.onCommit(logged, cand, cursor); err != nil {
				return nil, fmt.Errorf("commit hook: %w", err)
			}
		}
		e.commit(cand, out.Result)
		e.nextFit = cursor
		e.log = append(e.log, logged)
	}
	return out, nil
}

// analyse runs the memoized RT screen and the warm-started period
// selection over cand (which must be validated and fully placed).
// rtIdentical certifies the RT band (members, parameters, placement)
// is unchanged from the committed state, unlocking the trusted-prefix
// fast path. It does not commit.
func (e *Engine) analyse(ctx context.Context, cand *task.Set, rtIdentical bool) (*Outcome, error) {
	stats := Stats{}
	if err := e.rtScreen(cand, &stats); err != nil {
		return nil, err
	}
	var prior *core.Prior
	if rtIdentical {
		prior = e.prior
	}
	hints := &core.Hints{Periods: e.hints, RTVerified: true, Prior: prior}
	stats.FullSelection = e.hints == nil
	res, rstats, err := core.SelectPeriodsResumableWith(ctx, cand, e.cfg.Opts, hints, e.scratch)
	if err != nil {
		return nil, err
	}
	stats.Selection = *rstats
	return &Outcome{Set: cand.Clone(), Result: res, Stats: stats}, nil
}

// rtScreen is the memoized per-core Eq. 1 check. With
// cfg.Opts.AnalysisWorkers > 1 the uncached cores' verdicts are
// computed by a bounded worker group and merged in core order —
// bit-identical to the serial screen on the success path (the
// conjunction is order-independent), and the error still names the
// lowest unschedulable core. The serial default keeps the legacy
// shape exactly, including its short-circuit at the first
// unschedulable core; the parallel form evaluates (and memoizes)
// every uncached core instead, which changes only which verdicts are
// warm in the cache, never an analysis result.
func (e *Engine) rtScreen(cand *task.Set, stats *Stats) error {
	rtUnschedulable := func(m int) error {
		return fmt.Errorf("RT band is not schedulable under Eq. 1 (core %d); HYDRA-C requires a feasible legacy system", m)
	}
	if workers := e.cfg.Opts.AnalysisWorkers; workers <= 1 || cand.Cores <= 1 {
		for m := 0; m < cand.Cores; m++ {
			tasks := cand.RTOnCore(m)
			key := task.CoreHash(tasks)
			sched, ok := e.coreCache.Get(key)
			if !ok {
				sched = rta.CoreSchedulable(tasks)
				e.coreCache.Add(key, sched)
				stats.CoresChecked++
			} else {
				stats.CoresFromCache++
			}
			if !sched {
				return rtUnschedulable(m)
			}
		}
		return nil
	}

	type coreCheck struct {
		m     int
		tasks []task.RTTask
		key   string
		sched bool
	}
	var missing []coreCheck
	verdicts := make([]bool, cand.Cores)
	for m := 0; m < cand.Cores; m++ {
		tasks := cand.RTOnCore(m)
		key := task.CoreHash(tasks)
		if sched, ok := e.coreCache.Get(key); ok {
			stats.CoresFromCache++
			verdicts[m] = sched
			continue
		}
		stats.CoresChecked++
		missing = append(missing, coreCheck{m: m, tasks: tasks, key: key})
	}
	rta.ParallelFor(len(missing), e.cfg.Opts.AnalysisWorkers, func(i int) {
		missing[i].sched = rta.CoreSchedulable(missing[i].tasks)
	})
	for i := range missing {
		e.coreCache.Add(missing[i].key, missing[i].sched)
		verdicts[missing[i].m] = missing[i].sched
	}
	for m, sched := range verdicts {
		if !sched {
			return rtUnschedulable(m)
		}
	}
	return nil
}

// commit installs cand as the live state and refreshes the selection
// hints (cleared when the new state is unschedulable — there are no
// periods to warm-start from).
func (e *Engine) commit(cand *task.Set, res *core.Result) {
	e.set = cand
	if !res.Schedulable {
		e.hints = nil
		e.prior = nil
		return
	}
	e.hints = make(map[string]task.Time, len(cand.Security))
	for i, s := range cand.Security {
		e.hints[s.Name] = res.Periods[i]
	}
	// Rebuild the prior in priority order through the reused index
	// permutation (priorities are distinct per Validate, so the order
	// is unique and matches SecurityByPriority exactly).
	e.ord.sec = cand.Security
	e.ord.idx = e.ord.idx[:0]
	for i := range cand.Security {
		e.ord.idx = append(e.ord.idx, i)
	}
	sort.Sort(&e.ord)
	pb := &e.priorBuf
	pb.Sec, pb.Periods, pb.Resp = pb.Sec[:0], pb.Periods[:0], pb.Resp[:0]
	for _, j := range e.ord.idx {
		pb.Sec = append(pb.Sec, cand.Security[j])
		pb.Periods = append(pb.Periods, res.Periods[j])
		pb.Resp = append(pb.Resp, res.Resp[j])
	}
	e.ord.sec = nil // no retained alias into the committed set
	e.prior = pb
}

// priorOrder sorts an index permutation by security priority without
// allocating: a pointer receiver keeps the sort.Interface conversion
// off the heap, and the idx slice is engine-owned and reused.
type priorOrder struct {
	idx []int
	sec []task.SecurityTask
}

func (p *priorOrder) Len() int           { return len(p.idx) }
func (p *priorOrder) Less(i, j int) bool { return p.sec[p.idx[i]].Priority < p.sec[p.idx[j]].Priority }
func (p *priorOrder) Swap(i, j int)      { p.idx[i], p.idx[j] = p.idx[j], p.idx[i] }

// place finds a core for one incoming unassigned RT task among the
// candidate set's current placement, honouring the configured
// heuristic without moving any already-placed task (hardware affinity
// of the running system is a hard constraint — this is single-task
// bin packing, not a re-partition). cursor carries the next-fit
// rotation state; the possibly-advanced cursor is returned alongside
// the chosen core.
func (e *Engine) place(cand *task.Set, t task.RTTask, cursor int) (int, int, error) {
	util := make([]float64, cand.Cores)
	for _, rt := range cand.RT {
		if rt.Core >= 0 {
			util[rt.Core] += rt.Utilization()
		}
	}
	fits := func(m int) bool {
		onCore := cand.RTOnCore(m)
		probe := t
		probe.Core = m
		i := sort.Search(len(onCore), func(i int) bool { return onCore[i].Priority > probe.Priority })
		onCore = append(onCore, task.RTTask{})
		copy(onCore[i+1:], onCore[i:])
		onCore[i] = probe
		return rta.CoreSchedulable(onCore)
	}
	best := -1
	var bestKey float64
	switch e.cfg.Heuristic {
	case partition.NextFit:
		for k := 0; k < cand.Cores; k++ {
			m := (cursor + k) % cand.Cores
			if fits(m) {
				return m, m, nil
			}
		}
	case partition.FirstFit:
		for m := 0; m < cand.Cores; m++ {
			if fits(m) {
				return m, cursor, nil
			}
		}
	case partition.WorstFit:
		for m := 0; m < cand.Cores; m++ {
			if fits(m) && (best == -1 || util[m] < bestKey) {
				best, bestKey = m, util[m]
			}
		}
	default: // BestFit
		for m := 0; m < cand.Cores; m++ {
			if fits(m) && (best == -1 || util[m] > bestKey) {
				best, bestKey = m, util[m]
			}
		}
	}
	if best == -1 {
		return 0, 0, partition.ErrInfeasible{Task: t.Name}
	}
	return best, cursor, nil
}

// removeTasks drops the named tasks from cand in place, preserving
// slice order, and reports whether any RT task was removed. Every
// name must match exactly one task.
func removeTasks(cand *task.Set, names []string) (rtRemoved bool, err error) {
	for _, name := range names {
		found := false
		for i, t := range cand.RT {
			if t.Name == name {
				cand.RT = append(cand.RT[:i], cand.RT[i+1:]...)
				found = true
				rtRemoved = true
				break
			}
		}
		if found {
			continue
		}
		for i, s := range cand.Security {
			if s.Name == name {
				cand.Security = append(cand.Security[:i], cand.Security[i+1:]...)
				found = true
				break
			}
		}
		if !found {
			return rtRemoved, fmt.Errorf("cannot remove %q: no such task in the admitted set", name)
		}
	}
	return rtRemoved, nil
}

// Snapshot returns a copy of the committed state.
func (e *Engine) Snapshot() *task.Set {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.set.Clone()
}

// Log returns a copy of the committed deltas in commit order. A serial
// replay of Log over the same base set through a fresh engine
// reproduces the committed state exactly — the property the
// concurrency stress tests assert.
func (e *Engine) Log() []task.Delta {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]task.Delta(nil), e.log...)
}
