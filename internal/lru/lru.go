// Package lru is a small, concurrency-safe, fixed-capacity LRU cache.
// It backs the Analyzer's report cache: admission-control services see
// heavy repeated traffic (the same task set re-submitted on every
// deployment check), and an analysis result is immutable once
// computed, so a bounded recently-used window captures most hits
// without unbounded growth.
package lru

import (
	"container/list"
	"sync"
)

// Cache maps K to V, evicting the least recently used entry once more
// than its capacity entries are stored. All methods are safe for
// concurrent use. The zero value is not usable; call New.
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	items   map[K]*list.Element
	onEvict func(K, V)
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New returns a cache holding at most capacity entries. A capacity
// of zero or less returns nil, which every method treats as a cache
// that never hits — callers can disable caching without branching.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity <= 0 {
		return nil
	}
	return &Cache[K, V]{
		cap:   capacity,
		order: list.New(),
		items: make(map[K]*list.Element, capacity),
	}
}

// OnEvict registers fn to run for every entry dropped by capacity
// eviction (not for values replaced by Add). fn runs synchronously
// with the cache lock held, so it must not call back into the cache;
// callers who need the cache again must defer that work. Set it
// before the cache is shared across goroutines.
func (c *Cache[K, V]) OnEvict(fn func(K, V)) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.onEvict = fn
	c.mu.Unlock()
}

// Get returns the value stored under k and marks it most recently
// used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return zero, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*entry[K, V]).val, true
}

// Add stores v under k (replacing any existing value), marks it most
// recently used, and evicts the least recently used entry if the
// cache is over capacity.
func (c *Cache[K, V]) Add(k K, v V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*entry[K, V]).val = v
		c.order.MoveToFront(el)
		return
	}
	c.insertLocked(k, v)
}

// AddIfAbsent stores v under k only when the key is not already
// present, reporting whether it stored. The check and the insert run
// under one lock acquisition, so of two racing callers exactly one
// wins — create-once semantics without an external mutex.
func (c *Cache[K, V]) AddIfAbsent(k K, v V) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[k]; ok {
		return false
	}
	c.insertLocked(k, v)
	return true
}

// insertLocked pushes a new entry and applies capacity eviction. The
// key must be absent and c.mu held.
func (c *Cache[K, V]) insertLocked(k K, v V) {
	c.items[k] = c.order.PushFront(&entry[K, V]{key: k, val: v})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		ent := oldest.Value.(*entry[K, V])
		delete(c.items, ent.key)
		if c.onEvict != nil {
			c.onEvict(ent.key, ent.val)
		}
	}
}

// Len returns the number of entries currently stored.
func (c *Cache[K, V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
