// Command hydraperf is the declarative regression-detection runner:
// it loads the experiment tree under test/regression/, measures every
// case PAIRED — N interleaved samples of the merge-base build and the
// head build — and judges each case's optimization goal with a
// Mann–Whitney significance test, so only more-than-random changes
// move the verdict.
//
// Subcommands:
//
//	hydraperf run     measure cases and print the verdict table
//	hydraperf check   like run, but exit 1 if any case regressed or errored
//	hydraperf history render a case's per-PR metric trajectory
//	hydraperf list    list the cases in the tree
//
// `run` and `check` build the merge-base hydrad in a temporary git
// worktree and run both sides as subprocesses on ephemeral ports; the
// loadgen driving them is always head code, so traffic generation can
// never skew the pairing. -selftest replaces the subprocess targets
// with in-process handlers (identical for `aa`; head delayed by an
// injected sleep for `regression`) to prove the gate itself works.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"hydrac/internal/regression"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hydraperf:", err)
		os.Exit(1)
	}
}

// errRegressed makes gate failures distinguishable from harness
// failures in tests while still exiting nonzero from main.
var errRegressed = fmt.Errorf("regression gate failed")

func run(args []string, stdout *os.File) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: hydraperf run|check|history|list [flags]")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "run", "check":
		return runMeasure(cmd, rest, stdout)
	case "history":
		return runHistory(rest, stdout)
	case "list":
		return runList(rest, stdout)
	case "-h", "--help", "help":
		fmt.Fprintln(stdout, "usage: hydraperf run|check|history|list [flags]")
		return nil
	}
	return fmt.Errorf("unknown subcommand %q (want run, check, history or list)", cmd)
}

// treeFlags adds the flags every subcommand shares.
func treeFlags(fs *flag.FlagSet) *string {
	return fs.String("tree", "", "regression tree directory (default: <repo root>/test/regression)")
}

func resolveTree(tree string) (string, error) {
	if tree != "" {
		return tree, nil
	}
	root, err := gitOutput("", "rev-parse", "--show-toplevel")
	if err != nil {
		return "", fmt.Errorf("-tree not set and not in a git repository: %w", err)
	}
	return filepath.Join(root, "test", "regression"), nil
}

func runMeasure(cmd string, args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("hydraperf "+cmd, flag.ContinueOnError)
	tree := treeFlags(fs)
	cases := fs.String("cases", "", "comma-separated case names (default: all)")
	base := fs.String("base", "auto", "base git rev to compare against; auto = merge-base with origin/main")
	samples := fs.Int("samples", 5, "paired samples per side")
	outDir := fs.String("out", "", "write one <case>.json result per case into this directory")
	mdFile := fs.String("md", "", "write the verdict table as markdown to this file")
	record := fs.String("record", "", "append results to the tree's history/ under this label (e.g. pr7)")
	selftest := fs.String("selftest", "", "harness self-test: aa (identical in-process sides) or regression (head delayed by an injected sleep)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}

	treeDir, err := resolveTree(*tree)
	if err != nil {
		return err
	}
	var names []string
	if *cases != "" {
		names = strings.Split(*cases, ",")
	}
	loaded, err := regression.LoadCases(filepath.Join(treeDir, "cases"), names)
	if err != nil {
		return err
	}

	runner := regression.Runner{
		Samples: *samples,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "hydraperf: "+format+"\n", a...)
		},
	}
	switch *selftest {
	case "":
		cleanup, err := setupPairedSides(&runner, *base)
		if err != nil {
			return err
		}
		defer cleanup()
	case "aa":
		runner.Base = regression.Side{Name: "base", Target: regression.HandlerTarget{}}
		runner.Head = regression.Side{Name: "head", Target: regression.HandlerTarget{}}
	case "regression":
		runner.Base = regression.Side{Name: "base", Target: regression.HandlerTarget{}}
		runner.Head = regression.Side{
			Name:   "head",
			Target: regression.HandlerTarget{Wrap: regression.SleepInjector(5 * time.Millisecond)},
		}
	default:
		return fmt.Errorf("-selftest %q (want aa or regression)", *selftest)
	}

	results := runner.RunCases(loaded)
	fmt.Fprint(stdout, regression.TextTable(results))

	if *outDir != "" {
		if err := writeResults(*outDir, results); err != nil {
			return err
		}
	}
	if *mdFile != "" {
		if err := os.WriteFile(*mdFile, []byte(regression.MarkdownTable(results)), 0o644); err != nil {
			return err
		}
	}
	if *record != "" {
		when := time.Now().UTC().Format(time.RFC3339)
		for _, r := range results {
			if r.Verdict == regression.VerdictSkipped || r.Verdict == regression.VerdictError {
				continue // only measured outcomes belong in the trajectory
			}
			if err := regression.AppendHistory(filepath.Join(treeDir, "history"), r.Case, regression.EntryFromResult(r, when, *record)); err != nil {
				return err
			}
		}
	}

	if cmd == "check" {
		failed := 0
		for _, r := range results {
			if r.Failed() {
				failed++
			}
		}
		if failed > 0 {
			return fmt.Errorf("%w: %d of %d cases", errRegressed, failed, len(results))
		}
	}
	return nil
}

// setupPairedSides resolves the base rev, materialises it in a
// temporary worktree, builds hydrad for both sides and wires them
// into the runner. The returned cleanup tears the worktree down.
func setupPairedSides(r *regression.Runner, baseRev string) (func(), error) {
	headSHA, err := gitOutput("", "rev-parse", "HEAD")
	if err != nil {
		return nil, fmt.Errorf("resolving HEAD: %w", err)
	}
	baseSHA, err := resolveBase(baseRev)
	if err != nil {
		return nil, err
	}
	root, err := gitOutput("", "rev-parse", "--show-toplevel")
	if err != nil {
		return nil, err
	}

	tmp, err := os.MkdirTemp("", "hydraperf-")
	if err != nil {
		return nil, err
	}
	cleanup := func() {
		_ = exec.Command("git", "worktree", "remove", "--force", filepath.Join(tmp, "base-tree")).Run()
		_ = os.RemoveAll(tmp)
	}
	ok := false
	defer func() {
		if !ok {
			cleanup()
		}
	}()

	baseTree := filepath.Join(tmp, "base-tree")
	if _, err := gitOutput("", "worktree", "add", "--detach", baseTree, baseSHA); err != nil {
		return nil, fmt.Errorf("checking out base %s: %w", short(baseSHA), err)
	}
	baseBin := filepath.Join(tmp, "hydrad-base")
	if err := goBuild(baseTree, baseBin, "./cmd/hydrad"); err != nil {
		return nil, fmt.Errorf("building base hydrad at %s: %w", short(baseSHA), err)
	}
	headBin := filepath.Join(tmp, "hydrad-head")
	if err := goBuild(root, headBin, "./cmd/hydrad"); err != nil {
		return nil, fmt.Errorf("building head hydrad: %w", err)
	}

	r.Base = regression.Side{Name: "base", SHA: short(baseSHA), Target: regression.BinaryTarget{Bin: baseBin}, TreeDir: baseTree}
	r.Head = regression.Side{Name: "head", SHA: short(headSHA), Target: regression.BinaryTarget{Bin: headBin}, TreeDir: root}
	fmt.Fprintf(os.Stderr, "hydraperf: paired run: base %s vs head %s\n", short(baseSHA), short(headSHA))
	ok = true
	return cleanup, nil
}

// resolveBase turns the -base flag into a SHA. "auto" prefers the
// merge-base with origin/main, falling back to local main for clones
// without the remote ref.
func resolveBase(rev string) (string, error) {
	if rev != "auto" && rev != "" {
		sha, err := gitOutput("", "rev-parse", "--verify", rev+"^{commit}")
		if err != nil {
			return "", fmt.Errorf("resolving base %q: %w", rev, err)
		}
		return sha, nil
	}
	for _, ref := range []string{"origin/main", "main"} {
		if sha, err := gitOutput("", "merge-base", "HEAD", ref); err == nil {
			return sha, nil
		}
	}
	return "", fmt.Errorf("could not find a merge-base with origin/main or main; pass -base explicitly")
}

func short(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}

func gitOutput(dir string, args ...string) (string, error) {
	cmd := exec.Command("git", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			return "", fmt.Errorf("git %s: %s", args[0], strings.TrimSpace(string(ee.Stderr)))
		}
		return "", fmt.Errorf("git %s: %w", args[0], err)
	}
	return strings.TrimSpace(string(out)), nil
}

func goBuild(dir, out, pkg string) error {
	cmd := exec.Command("go", "build", "-o", out, pkg)
	cmd.Dir = dir
	if b, err := cmd.CombinedOutput(); err != nil {
		return fmt.Errorf("%v: %s", err, strings.TrimSpace(string(b)))
	}
	return nil
}

func writeResults(dir string, results []regression.CaseResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, r := range results {
		b, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, r.Case+".json"), append(b, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func runHistory(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("hydraperf history", flag.ContinueOnError)
	tree := treeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: hydraperf history [-tree dir] <case>")
	}
	treeDir, err := resolveTree(*tree)
	if err != nil {
		return err
	}
	name := fs.Arg(0)
	entries, err := regression.ReadHistory(filepath.Join(treeDir, "history"), name)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("no history for case %q under %s", name, filepath.Join(treeDir, "history"))
	}
	fmt.Fprintf(stdout, "%s (%s)\n", name, entries[len(entries)-1].Metric)
	fmt.Fprint(stdout, regression.HistoryTable(entries))
	return nil
}

func runList(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("hydraperf list", flag.ContinueOnError)
	tree := treeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	treeDir, err := resolveTree(*tree)
	if err != nil {
		return err
	}
	cases, err := regression.LoadCases(filepath.Join(treeDir, "cases"), nil)
	if err != nil {
		return err
	}
	for _, c := range cases {
		fmt.Fprintf(stdout, "%-22s %-10s %-8s tol=%.0f%%\n", c.Name, c.Experiment.Goal, c.Profile.Kind, 100*c.Experiment.Tolerance)
	}
	return nil
}
