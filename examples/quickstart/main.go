// Quickstart: integrate two security tasks into a legacy two-core
// real-time system with HYDRA-C, in five steps:
//
//  1. describe the partitioned RT tasks and the security tasks,
//  2. run Algorithm 1 to pick the security periods,
//  3. apply the periods,
//  4. simulate the semi-partitioned schedule,
//  5. inspect the schedule as a Gantt chart.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hydrac/internal/core"
	"hydrac/internal/sim"
	"hydrac/internal/task"
)

func main() {
	// Step 1 — the legacy system: two RT tasks pinned to two cores
	// (the paper's Fig. 1 setup), plus one security monitor to
	// integrate. Times are in ticks (think milliseconds).
	ts := &task.Set{
		Cores: 2,
		RT: []task.RTTask{
			{Name: "control", WCET: 12, Period: 40, Deadline: 40, Core: 0, Priority: 0},
			{Name: "vision", WCET: 25, Period: 100, Deadline: 100, Core: 1, Priority: 1},
		},
		Security: []task.SecurityTask{
			{Name: "scanner", WCET: 30, MaxPeriod: 500, Priority: 0, Core: -1},
		},
	}

	// Step 2 — period selection: as frequent as schedulability allows.
	res, err := core.SelectPeriods(ts, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Schedulable {
		log.Fatal("the security task cannot meet its Tmax bound on this platform")
	}
	for i, s := range ts.Security {
		fmt.Printf("%s: period %d ticks (WCRT %d, designer bound %d)\n",
			s.Name, res.Periods[i], res.Resp[i], s.MaxPeriod)
	}

	// Step 3 — apply the chosen periods.
	configured := core.Apply(ts, res)

	// Step 4 — simulate: the scanner runs below the RT tasks and hops
	// to whichever core is idle.
	out, err := sim.Run(configured, sim.Config{
		Policy:          sim.SemiPartitioned,
		Horizon:         400,
		RecordIntervals: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(out.Summary())

	// Step 5 — look at the schedule.
	fmt.Println()
	fmt.Print(sim.Gantt(out, 0, 400, 4))
}
