// Package regression is the declarative regression-detection harness
// behind cmd/hydraperf: a tree of self-describing experiment cases
// (test/regression/cases/<name>/), each a load profile plus one
// optimization goal, run PAIRED — N interleaved samples of the
// merge-base build and the head build — with a nonparametric
// significance test deciding whether the head moved the goal metric
// by more than run-to-run noise. Modelled on DataDog's SMP Regression
// Detector case tree (test/regression/ in datadog-agent).
package regression

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"hydrac/internal/gen"
	"hydrac/internal/hydradhttp"
	"hydrac/internal/loadgen"
	"hydrac/internal/partition"
	"hydrac/internal/task"
)

// Goal is what a case optimises for; its direction decides which
// significant changes count as regressions.
type Goal string

const (
	// GoalThroughput gates sustained requests per second (higher is
	// better) of a closed-loop load profile.
	GoalThroughput Goal = "throughput"
	// GoalP99 gates tail latency in milliseconds (lower is better).
	GoalP99 Goal = "p99"
	// GoalAllocs gates allocations per operation of a Go benchmark
	// (lower is better); gobench cases only.
	GoalAllocs Goal = "allocs"
	// GoalNsPerOp gates wall time per operation of a Go benchmark
	// (lower is better); gobench cases only. The path for kernel-level
	// time budgets that have no HTTP observable — e.g. the massive-
	// scale corpus entries, whose per-request cost would blow a load
	// profile's measurement window.
	GoalNsPerOp Goal = "nsop"
)

// HigherIsBetter reports the goal's good direction.
func (g Goal) HigherIsBetter() bool { return g == GoalThroughput }

// Metric names the scalar each goal extracts from a sample.
func (g Goal) Metric() (name, unit string) {
	switch g {
	case GoalThroughput:
		return "rps", "req/s"
	case GoalP99:
		return "p99_ms", "ms"
	case GoalAllocs:
		return "allocs_per_op", "allocs/op"
	case GoalNsPerOp:
		return "ns_per_op", "ns/op"
	}
	return string(g), ""
}

// Case kinds.
const (
	// KindLoad drives the hydrad HTTP service with internal/loadgen.
	KindLoad = "load"
	// KindGobench samples a `go test -bench` benchmark binary built in
	// each tree — the path for allocation gates, which have no HTTP
	// observable.
	KindGobench = "gobench"
)

// Mix kinds for load profiles.
const (
	MixCold    = "cold"    // rotating pool of distinct generated sets → cache misses
	MixDup     = "dup"     // one fixed body → exact-byte duplicate hot path
	MixBatch   = "batch"   // rotating batch envelopes on /v1/analyze/batch
	MixSession = "session" // per-worker admission session, alternating admit/remove
)

// Profile is a case's profile.yaml: how to generate load (or which
// benchmark to sample).
type Profile struct {
	Kind string

	// Load profiles.
	Concurrency []int
	Duration    time.Duration
	Mix         map[string]int // mix kind → weight
	Daemon      DaemonOpts
	Workload    Workload
	// Retries routes the load through the retrying client
	// (internal/hydraclient): up to Retries extra attempts per request
	// with capped backoff, Retry-After honoured. 0 fires once.
	Retries int

	// Gobench profiles.
	Package   string
	Bench     string
	Benchtime string
}

// DaemonOpts configures the hydrad instance a load sample boots.
type DaemonOpts struct {
	Cache    int
	Sessions int
	// DataDir, when true, boots the daemon with a fresh temporary
	// -data-dir — the durable session tier with WAL fsync on every
	// commit. A base build predating the flag makes the sample (and
	// the case) skip, not fail.
	DataDir bool
	// MaxInflight, when positive, arms the daemon's admission gate
	// (-max-inflight): excess load is shed with 429 instead of queued
	// unboundedly. MaxQueue and QueueWait tune the gate's wait queue
	// and default to hydrad's own defaults at parse time, so both
	// target kinds boot identical gates. A base build predating the
	// flags makes the sample skip, not fail.
	MaxInflight int
	MaxQueue    int
	QueueWait   time.Duration
	// Fleet, when >= 2, boots that many daemon instances joined into a
	// consistent-hash fleet (-peers/-self): load spreads round-robin
	// over the nodes and 307 ownership redirects are followed, so the
	// sample measures routed-fleet cost, not a single node. A base
	// build predating the fleet flags makes the sample skip, not fail.
	Fleet int
}

// Workload parameterises the input task-set generator (internal/gen,
// the paper's Table 3 shape) for load profiles.
type Workload struct {
	// Cores is M; the generator scales task counts with it.
	Cores int
	// Group is the utilisation group (0–9): group g covers normalised
	// utilisation ≈ (0.01+0.1g, 0.1+0.1g]. High groups approach
	// overload.
	Group int
	// Seed derives the deterministic per-set RNG streams.
	Seed int64
	// Sets is the pool size of distinct task sets (cold/batch mixes).
	Sets int
	// Batch is the number of task sets per batch request.
	Batch int
}

// Experiment is a case's experiment.yaml: the single optimization
// goal plus gate tuning.
type Experiment struct {
	Goal Goal
	// Tolerance is the relative change treated as within noise even
	// when statistically significant (e.g. 0.05 = ±5%). Significant
	// changes smaller than this never flip the gate.
	Tolerance float64
	// Alpha is the significance level of the Mann–Whitney test.
	Alpha float64
}

// Case is one loaded experiment directory.
type Case struct {
	Name       string
	Dir        string
	Profile    Profile
	Experiment Experiment
}

// Defaults applied during load.
const (
	defaultTolerance = 0.05
	defaultAlpha     = 0.05
	defaultBenchtime = "100x"
)

// LoadCases reads and validates every case under dir (the cases/
// directory of a regression tree). Names is an optional filter; empty
// loads all. Cases come back sorted by name.
func LoadCases(dir string, names []string) ([]Case, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("reading case tree: %w", err)
	}
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var cases []Case
	found := map[string]bool{}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if len(want) > 0 && !want[e.Name()] {
			continue
		}
		c, err := loadCase(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("case %s: %w", e.Name(), err)
		}
		cases = append(cases, c)
		found[e.Name()] = true
	}
	var missing []string
	for n := range want {
		if !found[n] {
			missing = append(missing, n)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return nil, fmt.Errorf("unknown cases: %s", strings.Join(missing, ", "))
	}
	if len(cases) == 0 {
		return nil, fmt.Errorf("no cases under %s", dir)
	}
	sort.Slice(cases, func(i, j int) bool { return cases[i].Name < cases[j].Name })
	return cases, nil
}

func loadCase(dir string) (Case, error) {
	c := Case{Name: filepath.Base(dir), Dir: dir}
	prof, err := readYAMLFile(filepath.Join(dir, "profile.yaml"))
	if err != nil {
		return c, err
	}
	exp, err := readYAMLFile(filepath.Join(dir, "experiment.yaml"))
	if err != nil {
		return c, err
	}
	if c.Profile, err = parseProfile(prof); err != nil {
		return c, fmt.Errorf("profile.yaml: %w", err)
	}
	if c.Experiment, err = parseExperiment(exp); err != nil {
		return c, fmt.Errorf("experiment.yaml: %w", err)
	}
	if err := c.validate(); err != nil {
		return c, err
	}
	return c, nil
}

func readYAMLFile(path string) (map[string]any, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc, err := parseYAML(string(raw))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return doc, nil
}

// fields wraps the decoded YAML tree with typed, key-tracking access
// so unknown keys become load errors (a typo in a case file must not
// silently change the experiment).
type fields struct {
	m    map[string]any
	seen map[string]bool
}

func newFields(m map[string]any) *fields { return &fields{m: m, seen: map[string]bool{}} }

func (f *fields) get(key string) (any, bool) {
	v, ok := f.m[key]
	f.seen[key] = true
	return v, ok
}

func (f *fields) unknown() error {
	var extra []string
	for k := range f.m {
		if !f.seen[k] {
			extra = append(extra, k)
		}
	}
	if len(extra) > 0 {
		sort.Strings(extra)
		return fmt.Errorf("unknown keys: %s", strings.Join(extra, ", "))
	}
	return nil
}

func (f *fields) str(key, def string) (string, error) {
	v, ok := f.get(key)
	if !ok {
		return def, nil
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("%s: want a string, got %v", key, v)
	}
	return s, nil
}

func (f *fields) integer(key string, def int) (int, error) {
	v, ok := f.get(key)
	if !ok {
		return def, nil
	}
	n, ok := v.(int64)
	if !ok {
		return 0, fmt.Errorf("%s: want an integer, got %v", key, v)
	}
	return int(n), nil
}

func (f *fields) boolean(key string, def bool) (bool, error) {
	v, ok := f.get(key)
	if !ok {
		return def, nil
	}
	b, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("%s: want true or false, got %v", key, v)
	}
	return b, nil
}

func (f *fields) float(key string, def float64) (float64, error) {
	v, ok := f.get(key)
	if !ok {
		return def, nil
	}
	switch x := v.(type) {
	case float64:
		return x, nil
	case int64:
		return float64(x), nil
	}
	return 0, fmt.Errorf("%s: want a number, got %v", key, v)
}

func (f *fields) sub(key string) (*fields, error) {
	v, ok := f.get(key)
	if !ok {
		return newFields(map[string]any{}), nil
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("%s: want a mapping, got %v", key, v)
	}
	return newFields(m), nil
}

func (f *fields) intList(key string) ([]int, error) {
	v, ok := f.get(key)
	if !ok {
		return nil, nil
	}
	seq, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("%s: want a sequence, got %v", key, v)
	}
	out := make([]int, len(seq))
	for i, item := range seq {
		n, ok := item.(int64)
		if !ok {
			return nil, fmt.Errorf("%s[%d]: want an integer, got %v", key, i, item)
		}
		out[i] = int(n)
	}
	return out, nil
}

func parseProfile(doc map[string]any) (Profile, error) {
	f := newFields(doc)
	var p Profile
	var err error
	if p.Kind, err = f.str("kind", KindLoad); err != nil {
		return p, err
	}
	switch p.Kind {
	case KindLoad:
		if p.Concurrency, err = f.intList("concurrency"); err != nil {
			return p, err
		}
		durS, err := f.str("duration", "500ms")
		if err != nil {
			return p, err
		}
		if p.Duration, err = time.ParseDuration(durS); err != nil {
			return p, fmt.Errorf("duration: %w", err)
		}
		mixF, err := f.sub("mix")
		if err != nil {
			return p, err
		}
		p.Mix = map[string]int{}
		for kind := range mixF.m {
			w, err := mixF.integer(kind, 0)
			if err != nil {
				return p, fmt.Errorf("mix: %w", err)
			}
			p.Mix[kind] = w
		}
		dF, err := f.sub("daemon")
		if err != nil {
			return p, err
		}
		if p.Daemon.Cache, err = dF.integer("cache", 1024); err != nil {
			return p, err
		}
		if p.Daemon.Sessions, err = dF.integer("sessions", 256); err != nil {
			return p, err
		}
		if p.Daemon.DataDir, err = dF.boolean("data_dir", false); err != nil {
			return p, err
		}
		if p.Daemon.MaxInflight, err = dF.integer("max_inflight", 0); err != nil {
			return p, err
		}
		if p.Daemon.MaxQueue, err = dF.integer("max_queue", 64); err != nil {
			return p, err
		}
		if p.Daemon.Fleet, err = dF.integer("fleet", 0); err != nil {
			return p, err
		}
		waitS, err := dF.str("queue_wait", hydradhttp.DefaultQueueWait.String())
		if err != nil {
			return p, err
		}
		if p.Daemon.QueueWait, err = time.ParseDuration(waitS); err != nil {
			return p, fmt.Errorf("daemon: queue_wait: %w", err)
		}
		if err := dF.unknown(); err != nil {
			return p, fmt.Errorf("daemon: %w", err)
		}
		if p.Retries, err = f.integer("retries", 0); err != nil {
			return p, err
		}
		wF, err := f.sub("workload")
		if err != nil {
			return p, err
		}
		if p.Workload.Cores, err = wF.integer("cores", 4); err != nil {
			return p, err
		}
		if p.Workload.Group, err = wF.integer("group", 4); err != nil {
			return p, err
		}
		seed, err := wF.integer("seed", 1)
		if err != nil {
			return p, err
		}
		p.Workload.Seed = int64(seed)
		if p.Workload.Sets, err = wF.integer("sets", 32); err != nil {
			return p, err
		}
		if p.Workload.Batch, err = wF.integer("batch", 8); err != nil {
			return p, err
		}
		if err := wF.unknown(); err != nil {
			return p, fmt.Errorf("workload: %w", err)
		}
	case KindGobench:
		if p.Package, err = f.str("package", "."); err != nil {
			return p, err
		}
		if p.Bench, err = f.str("bench", ""); err != nil {
			return p, err
		}
		if p.Benchtime, err = f.str("benchtime", defaultBenchtime); err != nil {
			return p, err
		}
	default:
		return p, fmt.Errorf("kind: %q (want %s or %s)", p.Kind, KindLoad, KindGobench)
	}
	return p, f.unknown()
}

func parseExperiment(doc map[string]any) (Experiment, error) {
	f := newFields(doc)
	var e Experiment
	goal, err := f.str("optimization_goal", "")
	if err != nil {
		return e, err
	}
	e.Goal = Goal(goal)
	if e.Tolerance, err = f.float("tolerance", defaultTolerance); err != nil {
		return e, err
	}
	if e.Alpha, err = f.float("alpha", defaultAlpha); err != nil {
		return e, err
	}
	return e, f.unknown()
}

// validate enforces the cross-field rules a runnable case must meet.
func (c *Case) validate() error {
	switch c.Experiment.Goal {
	case GoalThroughput, GoalP99:
		if c.Profile.Kind != KindLoad {
			return fmt.Errorf("goal %s requires a load profile", c.Experiment.Goal)
		}
	case GoalAllocs, GoalNsPerOp:
		if c.Profile.Kind != KindGobench {
			return fmt.Errorf("goal %s requires a gobench profile (per-op metrics are not observable over HTTP)", c.Experiment.Goal)
		}
	case "":
		return fmt.Errorf("experiment.yaml must name an optimization_goal (throughput, p99, allocs or nsop)")
	default:
		return fmt.Errorf("unknown optimization_goal %q (want throughput, p99, allocs or nsop)", c.Experiment.Goal)
	}
	if c.Experiment.Tolerance < 0 || c.Experiment.Tolerance >= 1 {
		return fmt.Errorf("tolerance %v out of range [0, 1)", c.Experiment.Tolerance)
	}
	if c.Experiment.Alpha <= 0 || c.Experiment.Alpha >= 1 {
		return fmt.Errorf("alpha %v out of range (0, 1)", c.Experiment.Alpha)
	}
	switch c.Profile.Kind {
	case KindLoad:
		if len(c.Profile.Concurrency) == 0 {
			return fmt.Errorf("load profile needs a concurrency sweep")
		}
		for _, lvl := range c.Profile.Concurrency {
			if lvl < 1 {
				return fmt.Errorf("concurrency level %d < 1", lvl)
			}
		}
		if c.Profile.Duration <= 0 {
			return fmt.Errorf("duration must be positive")
		}
		if len(c.Profile.Mix) == 0 {
			return fmt.Errorf("load profile needs a mix (cold, dup, batch, session)")
		}
		for kind, w := range c.Profile.Mix {
			switch kind {
			case MixCold, MixDup, MixBatch, MixSession:
			default:
				return fmt.Errorf("unknown mix kind %q", kind)
			}
			if w < 1 {
				return fmt.Errorf("mix %s: weight %d < 1", kind, w)
			}
		}
		w := c.Profile.Workload
		if w.Cores < 1 || w.Group < 0 || w.Group > 9 || w.Sets < 1 || w.Batch < 1 {
			return fmt.Errorf("bad workload parameters: %+v", w)
		}
		d := c.Profile.Daemon
		if d.MaxInflight < 0 || d.MaxQueue < 0 || d.QueueWait <= 0 {
			return fmt.Errorf("bad daemon gate parameters: max_inflight %d, max_queue %d, queue_wait %s", d.MaxInflight, d.MaxQueue, d.QueueWait)
		}
		if d.Fleet != 0 && (d.Fleet < 2 || d.Fleet > 8) {
			return fmt.Errorf("fleet %d out of range (0 for a single node, or 2..8 members)", d.Fleet)
		}
		if c.Profile.Retries < 0 {
			return fmt.Errorf("retries %d < 0", c.Profile.Retries)
		}
	case KindGobench:
		if c.Profile.Bench == "" {
			return fmt.Errorf("gobench profile needs a bench regexp")
		}
	}
	return nil
}

// BuildSource materialises a load case's traffic: the generated
// task-set pool, batch envelopes, and session deltas, composed into a
// loadgen source per the mix. The same source (same bodies) feeds
// base AND head samples, so workload generation can never skew the
// pairing.
func (c *Case) BuildSource() (loadgen.Source, error) {
	if c.Profile.Kind != KindLoad {
		return nil, fmt.Errorf("case %s is not a load case", c.Name)
	}
	w := c.Profile.Workload
	pool, err := generatePool(w)
	if err != nil {
		return nil, fmt.Errorf("case %s: %w", c.Name, err)
	}
	var entries []loadgen.MixEntry
	// Deterministic order: kinds sorted by name.
	kinds := make([]string, 0, len(c.Profile.Mix))
	for k := range c.Profile.Mix {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		weight := c.Profile.Mix[kind]
		var src loadgen.Source
		switch kind {
		case MixCold:
			src = loadgen.Rotating{Path: "/v1/analyze", Bodies: pool}
		case MixDup:
			src = loadgen.Fixed{Path: "/v1/analyze", Body: pool[0]}
		case MixBatch:
			batches, err := batchBodies(pool, w.Batch)
			if err != nil {
				return nil, fmt.Errorf("case %s: %w", c.Name, err)
			}
			src = loadgen.Rotating{Path: "/v1/analyze/batch", Bodies: batches}
		case MixSession:
			admit, remove, err := sessionDeltas()
			if err != nil {
				return nil, fmt.Errorf("case %s: %w", c.Name, err)
			}
			src = loadgen.SessionAdmit{Base: pool[0], Admit: admit, Remove: remove}
		}
		entries = append(entries, loadgen.MixEntry{Source: src, Weight: weight})
	}
	if len(entries) == 1 {
		return entries[0].Source, nil
	}
	return loadgen.Mix{Entries: entries}, nil
}

// generatePool draws the workload's pool of distinct task sets and
// pre-encodes them. Draw failures (utilisation groups where some
// seeds yield no partitionable set) skip to the next index; the pool
// must still fill from a bounded number of attempts so a bad
// workload spec fails loudly instead of looping.
func generatePool(w Workload) ([][]byte, error) {
	cfg := gen.TableThree(w.Cores)
	cfg.Partition = partition.BestFit
	pool := make([][]byte, 0, w.Sets)
	maxIdx := w.Sets * 8
	for i := 0; len(pool) < w.Sets && i < maxIdx; i++ {
		ts, err := cfg.GenerateAt(w.Seed, w.Group, i)
		if err != nil {
			continue // this index has no partitionable draw; skip it
		}
		var buf bytes.Buffer
		if err := task.Encode(&buf, ts); err != nil {
			return nil, err
		}
		pool = append(pool, buf.Bytes())
	}
	if len(pool) < w.Sets {
		return nil, fmt.Errorf("workload group %d on %d cores yielded only %d/%d sets — the group is too close to overload for this generator",
			w.Group, w.Cores, len(pool), w.Sets)
	}
	return pool, nil
}

// batchBodies wraps the pool into /v1/analyze/batch envelopes of
// batch sets each, rotating through the pool.
func batchBodies(pool [][]byte, batch int) ([][]byte, error) {
	n := len(pool)
	count := (n + batch - 1) / batch
	out := make([][]byte, 0, count)
	for b := 0; b < count; b++ {
		raws := make([]json.RawMessage, batch)
		for j := 0; j < batch; j++ {
			raws[j] = json.RawMessage(pool[(b*batch+j)%n])
		}
		body, err := json.Marshal(map[string]any{"task_sets": raws})
		if err != nil {
			return nil, err
		}
		out = append(out, body)
	}
	return out, nil
}

// sessionDeltas builds the admit/remove pair the session mix
// alternates: one minimal security monitor at the lowest priority, so
// admission virtually always succeeds and the session returns to its
// base set every two requests.
func sessionDeltas() (admit, remove []byte, err error) {
	prio := 1 << 20 // far below any generated priority → lowest
	d := task.Delta{AddSecurity: []task.SecurityTask{{
		Name: "hydraperf_probe", WCET: 1, MaxPeriod: 900000, Core: -1, Priority: prio,
	}}}
	var abuf, rbuf bytes.Buffer
	if err := task.EncodeDelta(&abuf, &d); err != nil {
		return nil, nil, err
	}
	if err := task.EncodeDelta(&rbuf, &task.Delta{Remove: []string{"hydraperf_probe"}}); err != nil {
		return nil, nil, err
	}
	return abuf.Bytes(), rbuf.Bytes(), nil
}
