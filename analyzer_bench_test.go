package hydrac_test

import (
	"context"
	"math/rand"
	"testing"

	"hydrac"
	"hydrac/internal/gen"
)

// benchAnalyzerSet draws one mid-utilisation Table-3 set; heavy enough
// that period selection does real work.
func benchAnalyzerSet(b *testing.B) *hydrac.TaskSet {
	b.Helper()
	ts, err := gen.TableThree(2).Generate(rand.New(rand.NewSource(11)), 4)
	if err != nil {
		b.Fatal(err)
	}
	return ts
}

// BenchmarkAnalyzeCold measures the full pipeline with caching
// disabled: every iteration validates, selects periods and shapes a
// report from scratch. Metric: ns/op is the per-request analysis cost
// an uncached service pays.
func BenchmarkAnalyzeCold(b *testing.B) {
	a, err := hydrac.New()
	if err != nil {
		b.Fatal(err)
	}
	ts := benchAnalyzerSet(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Analyze(ctx, ts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeCached measures the repeated-traffic path: the same
// set re-submitted against a warm LRU. The gap to BenchmarkAnalyzeCold
// is what the cache buys an admission-control service per duplicate
// request (hash + lookup + clone instead of the full analysis).
func BenchmarkAnalyzeCached(b *testing.B) {
	a, err := hydrac.New(hydrac.WithCache(16))
	if err != nil {
		b.Fatal(err)
	}
	ts := benchAnalyzerSet(b)
	ctx := context.Background()
	if _, err := a.Analyze(ctx, ts); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := a.Analyze(ctx, ts)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.FromCache {
			b.Fatal("expected a cache hit")
		}
	}
}

// BenchmarkAnalyzeBatch measures bulk admission over the sweep
// engine at full parallelism, reports per second.
func BenchmarkAnalyzeBatch(b *testing.B) {
	cfg := gen.TableThree(2)
	var sets []*hydrac.TaskSet
	for i := 0; i < 32; i++ {
		ts, err := cfg.Generate(rand.New(rand.NewSource(int64(i+1))), i%6)
		if err != nil {
			b.Fatal(err)
		}
		sets = append(sets, ts)
	}
	a, err := hydrac.New()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.AnalyzeBatch(ctx, sets); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(sets)), "sets/batch")
}
