package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestTable2Flag(t *testing.T) {
	code, out, _ := runCapture(t, "-table2")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"700 MHz", "tripwire", "45000 ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output missing %q:\n%s", want, out)
		}
	}
}

func TestBadFlags(t *testing.T) {
	if code, _, stderr := runCapture(t, "-no-such-flag"); code != 2 || !strings.Contains(stderr, "flag") {
		t.Errorf("unknown flag exit %d stderr %q, want 2", code, stderr)
	}
	// -h prints usage and succeeds, as the pre-refactor flag.Parse did.
	if code, _, stderr := runCapture(t, "-h"); code != 0 || !strings.Contains(stderr, "-parallel") {
		t.Errorf("-h exit %d, want 0 with usage on stderr", code)
	}
}

func TestTinyRunRenders(t *testing.T) {
	code, out, _ := runCapture(t, "-trials", "4", "-hist")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"Fig. 5a", "Fig. 5b", "HYDRA-C", "Controlled", "distribution"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestParallelFlagEquivalence asserts -parallel changes nothing but
// wall-clock: byte-identical stdout at 1, 3, and all-CPU workers.
func TestParallelFlagEquivalence(t *testing.T) {
	base := []string{"-trials", "5", "-seed", "3"}
	_, ref, _ := runCapture(t, append(base, "-parallel", "1")...)
	if ref == "" {
		t.Fatal("empty serial output")
	}
	for _, par := range []string{"3", "0"} {
		if _, got, _ := runCapture(t, append(base, "-parallel", par)...); got != ref {
			t.Errorf("-parallel %s output differs from serial", par)
		}
	}
}

func TestProgressReporting(t *testing.T) {
	code, _, stderr := runCapture(t, "-trials", "3", "-parallel", "2", "-progress")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(stderr, "trial runs 6/6 (100%)") {
		t.Errorf("progress never reached 6/6:\n%s", stderr)
	}
}
