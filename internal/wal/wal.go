// Package wal is a segmented, CRC-framed, fsync-disciplined append
// log: the durability primitive under the session store
// (internal/store). Each logical log is a sequence of numbered
// segment files in one directory; every record is framed with its
// length and a CRC32-C of its payload, appended in one write, and —
// unless the caller opts out — fsynced before Append returns, so a
// record that was acknowledged survives a kill -9.
//
// Recovery discipline: a crash can only tear the TAIL of the LAST
// segment (appends go nowhere else), so Open repairs a bad tail frame
// there by truncating the file back to the last whole record. A bad
// frame in any earlier segment cannot be a crash artefact — frames
// are length-delimited, so everything after it would be silently
// unreachable — and is surfaced as ErrCorrupt instead of quietly
// dropping committed records.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hydrac/internal/faultfs"
)

// DefaultSegmentBytes rotates segments once they pass 1 MiB: large
// enough that steady traffic stays in one file descriptor, small
// enough that compaction-era cleanup deletes bounded files.
const DefaultSegmentBytes = 1 << 20

// MaxRecordBytes bounds one record's payload. Anything larger in a
// frame header is treated as corruption rather than an allocation
// request — the session store's records (JSON deltas) are a few
// hundred bytes.
const MaxRecordBytes = 16 << 20

// frameHeaderBytes is the per-record overhead: a 4-byte little-endian
// payload length followed by a 4-byte CRC32-C of the payload.
const frameHeaderBytes = 8

// ErrCorrupt marks damage Open refuses to repair: a bad frame before
// the final segment's tail, where truncation would discard records
// that were once acknowledged as durable.
var ErrCorrupt = errors.New("wal: corrupt segment")

// castagnoli is the CRC32-C table (hardware-accelerated on amd64 and
// arm64), the same polynomial most storage formats frame with.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options parameterises Open.
type Options struct {
	// Prefix names the log's generation inside its directory (e.g.
	// "g3-"); Open only touches files matching <prefix>NNNNNNNN.wal,
	// so several generations can coexist in one directory during
	// compaction handoff.
	Prefix string
	// SegmentBytes rotates to a fresh segment once the current file
	// reaches this size; <= 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// NoSync skips the per-append fsync. Appends then promise only
	// write ordering, not durability, until Sync or Close — the mode
	// for callers that batch their own sync points.
	NoSync bool
	// FS is the filesystem seam every write-side operation goes
	// through; nil means the real OS. The chaos suite injects faults
	// here (internal/faultfs.Injector) to script fsync failures, torn
	// writes and ENOSPC at exact points.
	FS faultfs.FS
}

// Log is an open append log. Append/Sync/Close serialise with each
// other through the owning caller: a Log has no internal locking and
// must be confined to one goroutine or an external critical section
// (the session store calls it under its per-session commit lock).
type Log struct {
	dir  string
	opt  Options
	fs   faultfs.FS
	f    faultfs.File // current (last) segment, opened for append
	seq  int          // current segment number
	size int64        // current segment size in bytes
	n    int          // records recovered at Open plus records appended
	buf  []byte       // reused frame buffer so Append allocates nothing
}

// Open replays every segment of the log in dir matching opt.Prefix,
// repairing a torn tail in the final segment, and returns the log
// opened for appending plus the recovered record payloads in append
// order. A directory with no matching segments starts a fresh log.
func Open(dir string, opt Options) (*Log, [][]byte, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = DefaultSegmentBytes
	}
	fs := faultfs.Default(opt.FS)
	segs, err := listSegments(dir, opt.Prefix)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{dir: dir, opt: opt, fs: fs}
	var records [][]byte
	for i, seg := range segs {
		last := i == len(segs)-1
		recs, validLen, err := readSegment(fs, filepath.Join(dir, seg.name))
		if err != nil {
			if !last || !errors.Is(err, errBadTail) {
				return nil, nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, seg.name, err)
			}
			// Torn tail of the final segment: a crash mid-append. Cut
			// the file back to the last whole record and carry on.
			if err := truncateSegment(fs, filepath.Join(dir, seg.name), validLen); err != nil {
				return nil, nil, fmt.Errorf("repairing torn tail of %s: %w", seg.name, err)
			}
		}
		records = append(records, recs...)
		if last {
			l.seq = seg.seq
			l.size = validLen
		}
	}
	if len(segs) == 0 {
		l.seq = 1
		f, err := createSegment(fs, dir, opt.Prefix, l.seq)
		if err != nil {
			return nil, nil, err
		}
		l.f = f
	} else {
		f, err := fs.OpenFile(filepath.Join(dir, segmentName(opt.Prefix, l.seq)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		l.f = f
	}
	l.n = len(records)
	return l, records, nil
}

// Append frames rec, writes it to the current segment (rotating
// first if the segment is full), and fsyncs unless the log was opened
// NoSync. The payload must be non-empty. On error the log must be
// considered failed: the segment may hold a torn frame, which the
// next Open will repair, but this Log must not be appended to again.
func (l *Log) Append(rec []byte) error {
	if len(rec) == 0 {
		return errors.New("wal: empty record")
	}
	if len(rec) > MaxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds MaxRecordBytes", len(rec))
	}
	if l.size >= l.opt.SegmentBytes {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	need := frameHeaderBytes + len(rec)
	if cap(l.buf) < need {
		l.buf = make([]byte, 0, need+need/2)
	}
	b := l.buf[:frameHeaderBytes]
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(rec)))
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(rec, castagnoli))
	b = append(b, rec...)
	if _, err := l.f.Write(b); err != nil {
		l.rollback()
		return fmt.Errorf("wal: appending record: %w", err)
	}
	if !l.opt.NoSync {
		if err := l.f.Sync(); err != nil {
			l.rollback()
			return fmt.Errorf("wal: syncing segment: %w", err)
		}
	}
	l.size += int64(len(b))
	l.n++
	return nil
}

// rollback best-effort cuts the segment back to the last known-good
// size after a failed append. Without it, a frame whose write landed
// but whose fsync failed would be a phantom commit: the caller was
// told the append failed, yet recovery would replay a complete,
// CRC-valid record. When the disk is too sick even to truncate, that
// ambiguity is unavoidable and recovery may replay the unacknowledged
// record — the documented crash-between-append-and-ack case.
func (l *Log) rollback() {
	if err := l.f.Truncate(l.size); err != nil {
		return
	}
	_ = l.f.Sync()
}

// rotate closes the full segment (synced) and starts the next one.
func (l *Log) rotate() error {
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	f, err := createSegment(l.fs, l.dir, l.opt.Prefix, l.seq+1)
	if err != nil {
		return err
	}
	l.f, l.seq, l.size = f, l.seq+1, 0
	return nil
}

// Count returns the number of records in the log: those recovered at
// Open plus those appended since.
func (l *Log) Count() int { return l.n }

// Sync flushes the current segment to stable storage — the flush
// point for NoSync logs.
func (l *Log) Sync() error { return l.f.Sync() }

// Close syncs and closes the current segment.
func (l *Log) Close() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// RemoveGeneration unlinks every segment of the given prefix in dir
// (a compacted-away generation) and syncs the directory. A nil fs
// means the real OS.
func RemoveGeneration(fs faultfs.FS, dir, prefix string) error {
	fs = faultfs.Default(fs)
	segs, err := listSegments(dir, prefix)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if err := fs.Remove(filepath.Join(dir, seg.name)); err != nil {
			return err
		}
	}
	return fs.SyncDir(dir)
}

// SyncDir fsyncs a directory, making renames and file creations in it
// durable. Exported because the session store shares the discipline
// for its snapshot files.
func SyncDir(dir string) error {
	return faultfs.OS{}.SyncDir(dir)
}

// segmentName formats <prefix>NNNNNNNN.wal.
func segmentName(prefix string, seq int) string {
	return fmt.Sprintf("%s%08d.wal", prefix, seq)
}

type segment struct {
	name string
	seq  int
}

// listSegments returns the prefix's segments sorted by sequence.
func listSegments(dir, prefix string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".wal") {
			continue
		}
		mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".wal")
		if len(mid) != 8 {
			continue
		}
		seq := 0
		ok := true
		for _, c := range mid {
			if c < '0' || c > '9' {
				ok = false
				break
			}
			seq = seq*10 + int(c-'0')
		}
		if !ok || seq == 0 {
			continue
		}
		segs = append(segs, segment{name: name, seq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	for i := 1; i < len(segs); i++ {
		if segs[i].seq != segs[i-1].seq+1 {
			return nil, fmt.Errorf("%w: segment gap between %s and %s", ErrCorrupt, segs[i-1].name, segs[i].name)
		}
	}
	return segs, nil
}

// createSegment creates a fresh segment file and makes its directory
// entry durable.
func createSegment(fs faultfs.FS, dir, prefix string, seq int) (faultfs.File, error) {
	f, err := fs.OpenFile(filepath.Join(dir, segmentName(prefix, seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := fs.SyncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// errBadTail reports a frame that does not verify, along with how many
// bytes of the segment (whole records) precede it.
var errBadTail = errors.New("bad frame")

// readSegment decodes one segment. On a bad frame it returns the
// records before it, the byte offset of the last whole record, and an
// error wrapping errBadTail describing the damage.
func readSegment(fs faultfs.FS, path string) ([][]byte, int64, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	var records [][]byte
	off := int64(0)
	for int64(len(data))-off >= frameHeaderBytes {
		h := data[off : off+frameHeaderBytes]
		n := int64(binary.LittleEndian.Uint32(h[0:4]))
		if n == 0 || n > MaxRecordBytes {
			return records, off, fmt.Errorf("%w: implausible record length %d at offset %d", errBadTail, n, off)
		}
		if int64(len(data))-off-frameHeaderBytes < n {
			return records, off, fmt.Errorf("%w: record of %d bytes truncated at offset %d", errBadTail, n, off)
		}
		payload := data[off+frameHeaderBytes : off+frameHeaderBytes+n]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(h[4:8]) {
			return records, off, fmt.Errorf("%w: CRC mismatch at offset %d", errBadTail, off)
		}
		records = append(records, append([]byte(nil), payload...))
		off += frameHeaderBytes + n
	}
	if off != int64(len(data)) {
		return records, off, fmt.Errorf("%w: %d trailing bytes after offset %d", errBadTail, int64(len(data))-off, off)
	}
	return records, off, nil
}

// truncateSegment cuts path back to size and syncs it — the torn-tail
// repair.
func truncateSegment(fs faultfs.FS, path string, size int64) error {
	f, err := fs.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// ReadAll replays a log's records without opening it for append: the
// read-only path for tools and tests. It applies the same recovery
// rules as Open but never modifies the files (a torn tail is simply
// not returned).
func ReadAll(dir string, opt Options) ([][]byte, error) {
	fs := faultfs.Default(opt.FS)
	segs, err := listSegments(dir, opt.Prefix)
	if err != nil {
		return nil, err
	}
	var records [][]byte
	for i, seg := range segs {
		recs, _, err := readSegment(fs, filepath.Join(dir, seg.name))
		if err != nil {
			if i != len(segs)-1 || !errors.Is(err, errBadTail) {
				return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, seg.name, err)
			}
		}
		records = append(records, recs...)
	}
	return records, nil
}
