package regression

import (
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// smallLoadCase is a fast paired load case for harness self-tests:
// one concurrency level, short window, dup traffic (no generator cost
// in the measured path).
func smallLoadCase(goal Goal, tolerance float64) Case {
	return Case{
		Name: "selftest-" + string(goal),
		Profile: Profile{
			Kind:        KindLoad,
			Concurrency: []int{2},
			Duration:    120 * time.Millisecond,
			Mix:         map[string]int{MixDup: 1},
			Daemon:      DaemonOpts{Cache: 64, Sessions: 16},
			Workload:    Workload{Cores: 4, Group: 3, Seed: 3, Sets: 2, Batch: 2},
		},
		Experiment: Experiment{Goal: goal, Tolerance: tolerance, Alpha: 0.05},
	}
}

// An identical-handler A/A run must pass: same code on both sides, so
// any verdict that fails the gate is a false positive. Tolerance is
// set wide (50%) so the assertion tests the harness plumbing, not the
// statistical size (which stats_test.go covers directly).
func TestRunCaseAAPasses(t *testing.T) {
	r := Runner{
		Base:    Side{Name: "base", Target: HandlerTarget{}},
		Head:    Side{Name: "head", Target: HandlerTarget{}},
		Samples: 4,
	}
	res := r.RunCase(smallLoadCase(GoalThroughput, 0.5))
	if res.Error != "" {
		t.Fatalf("A/A run errored: %s", res.Error)
	}
	if res.Failed() {
		t.Fatalf("A/A run failed the gate: verdict=%s change=%+.1f%% p=%.4f", res.Verdict, 100*res.Change, res.P)
	}
	if len(res.Base) != 4 || len(res.Head) != 4 {
		t.Fatalf("sample counts: base=%d head=%d, want 4/4", len(res.Base), len(res.Head))
	}
}

// A sleep injected into every head request (ISSUE 6's synthetic
// regression) must be flagged: with 5ms added to a sub-millisecond
// handler the sides separate perfectly, so the exact Mann–Whitney p
// at 4+4 samples is 2/70 < 0.05 and the change dwarfs any tolerance.
func TestRunCaseDetectsInjectedSleep(t *testing.T) {
	for _, goal := range []Goal{GoalThroughput, GoalP99} {
		t.Run(string(goal), func(t *testing.T) {
			r := Runner{
				Base:    Side{Name: "base", Target: HandlerTarget{}},
				Head:    Side{Name: "head", Target: HandlerTarget{Wrap: SleepInjector(5 * time.Millisecond)}},
				Samples: 4,
			}
			res := r.RunCase(smallLoadCase(goal, 0.05))
			if res.Error != "" {
				t.Fatalf("run errored: %s", res.Error)
			}
			if res.Verdict != VerdictRegressed {
				t.Fatalf("injected 5ms sleep not flagged: verdict=%s change=%+.1f%% p=%.4f",
					res.Verdict, 100*res.Change, res.P)
			}
			if !res.Failed() {
				t.Fatal("regressed verdict must fail the gate")
			}
		})
	}
}

// The same sleep on the BASE side is an improvement for head, which
// must not fail the gate.
func TestRunCaseImprovementDoesNotFail(t *testing.T) {
	r := Runner{
		Base:    Side{Name: "base", Target: HandlerTarget{Wrap: SleepInjector(5 * time.Millisecond)}},
		Head:    Side{Name: "head", Target: HandlerTarget{}},
		Samples: 4,
	}
	res := r.RunCase(smallLoadCase(GoalThroughput, 0.05))
	if res.Verdict != VerdictImproved {
		t.Fatalf("verdict=%s change=%+.1f%% p=%.4f, want improved", res.Verdict, 100*res.Change, res.P)
	}
	if res.Failed() {
		t.Fatal("improvement failed the gate")
	}
}

// A deliberately overloaded admission gate (8 closed-loop workers
// against max_inflight 1) sheds most traffic with 429 — which must NOT
// fail the sample: shed is not an error, and the goal metric is
// measured from the requests that were admitted.
func TestRunCaseOverloadShedIsNotAnError(t *testing.T) {
	c := smallLoadCase(GoalP99, 0.5)
	c.Name = "selftest-overload"
	c.Profile.Concurrency = []int{8}
	c.Profile.Daemon.MaxInflight = 1
	c.Profile.Daemon.MaxQueue = 1
	c.Profile.Daemon.QueueWait = 5 * time.Millisecond
	r := Runner{
		Base:    Side{Name: "base", Target: HandlerTarget{}},
		Head:    Side{Name: "head", Target: HandlerTarget{}},
		Samples: 2,
	}
	res := r.RunCase(c)
	if res.Error != "" {
		t.Fatalf("overload A/A run errored: %s", res.Error)
	}
	if res.Failed() {
		t.Fatalf("overload A/A run failed the gate: verdict=%s change=%+.1f%% p=%.4f", res.Verdict, 100*res.Change, res.P)
	}
}

func TestRunCaseSkipsWithoutConfiguration(t *testing.T) {
	r := Runner{Base: Side{Name: "base"}, Head: Side{Name: "head"}, Samples: 2}
	if res := r.RunCase(smallLoadCase(GoalThroughput, 0.05)); res.Verdict != VerdictSkipped {
		t.Fatalf("load case without targets: verdict=%s, want skipped", res.Verdict)
	}
	gb := Case{
		Name:       "gb",
		Profile:    Profile{Kind: KindGobench, Package: ".", Bench: "BenchmarkX", Benchtime: "10x"},
		Experiment: Experiment{Goal: GoalAllocs, Tolerance: 0.01, Alpha: 0.05},
	}
	if res := r.RunCase(gb); res.Verdict != VerdictSkipped {
		t.Fatalf("gobench case without trees: verdict=%s, want skipped", res.Verdict)
	}
}

// fakeBench writes an executable that prints canned `go test -bench`
// output, so the gobench sample parser is tested without compiling a
// second source tree.
func fakeBench(t *testing.T, output string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fake.test")
	script := "#!/bin/sh\ncat <<'EOF'\n" + output + "EOF\n"
	if err := os.WriteFile(path, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGobenchSampleParsesAllocs(t *testing.T) {
	bin := fakeBench(t, `goos: linux
BenchmarkAnalyzeCold-8   	     100	    488986 ns/op	   14448 B/op	      88 allocs/op
BenchmarkAnalyzeCold50-8 	     100	    923411 ns/op	   20000 B/op	     112 allocs/op
PASS
`)
	got, err := gobenchSample(bin, t.TempDir(), Profile{Bench: "BenchmarkAnalyzeCold", Benchtime: "100x"}, "allocs/op")
	if err != nil {
		t.Fatal(err)
	}
	if want := 100.0; got != want { // mean of 88 and 112
		t.Fatalf("allocs/op = %v, want %v", got, want)
	}
	ns, err := gobenchSample(bin, t.TempDir(), Profile{Bench: "BenchmarkAnalyzeCold", Benchtime: "100x"}, "ns/op")
	if err != nil {
		t.Fatal(err)
	}
	if want := 706198.5; ns != want { // mean of 488986 and 923411 (the fake prints both)
		t.Fatalf("ns/op = %v, want %v", ns, want)
	}
}

func TestGobenchSampleNoMatch(t *testing.T) {
	bin := fakeBench(t, "PASS\n")
	_, err := gobenchSample(bin, t.TempDir(), Profile{Bench: "BenchmarkNope", Benchtime: "1x"}, "allocs/op")
	if err == nil {
		t.Fatal("no matching benchmark must be an error, not a silent zero")
	}
	if !errors.Is(err, errNoBenchMatch) {
		t.Fatalf("no-match error %v does not carry the sentinel the base-skip path keys on", err)
	}
}

// judge direction sanity: the same downward move is a regression for
// throughput and an improvement for p99.
func TestJudgeDirections(t *testing.T) {
	down := CaseResult{
		Goal: GoalThroughput, Alpha: 0.05, Tolerance: 0.05,
		Base: []float64{100, 101, 102, 103, 104},
		Head: []float64{50, 51, 52, 53, 54},
	}
	down.judge()
	if down.Verdict != VerdictRegressed {
		t.Fatalf("throughput halved: verdict=%s", down.Verdict)
	}
	down.Goal = GoalP99
	down.judge()
	if down.Verdict != VerdictImproved {
		t.Fatalf("p99 halved: verdict=%s", down.Verdict)
	}
	// Significant but inside tolerance → no-change.
	tiny := CaseResult{
		Goal: GoalThroughput, Alpha: 0.05, Tolerance: 0.10,
		Base: []float64{100, 100.1, 100.2, 100.3, 100.4},
		Head: []float64{98, 98.1, 98.2, 98.3, 98.4},
	}
	tiny.judge()
	if tiny.Verdict != VerdictNoChange {
		t.Fatalf("2%% drop at 10%% tolerance: verdict=%s", tiny.Verdict)
	}
}

// A durable (data_dir) load case runs end to end against the
// in-process handler target: the store is real, the WAL is real, only
// the daemon binary is synthetic.
func TestRunCaseDurableDataDir(t *testing.T) {
	c := smallLoadCase(GoalP99, 0.5)
	c.Profile.Mix = map[string]int{MixSession: 1}
	c.Profile.Daemon.DataDir = true
	r := Runner{
		Base:    Side{Name: "base", Target: HandlerTarget{}},
		Head:    Side{Name: "head", Target: HandlerTarget{}},
		Samples: 2,
	}
	res := r.RunCase(c)
	if res.Error != "" {
		t.Fatalf("durable A/A run errored: %s", res.Error)
	}
	if res.Failed() {
		t.Fatalf("durable A/A run failed the gate: verdict=%s change=%+.1f%%", res.Verdict, 100*res.Change)
	}
}

// A target that cannot run the case's configuration (an old build
// rejecting -data-dir) skips the case instead of failing the gate.
type unsupportedTarget struct{}

func (unsupportedTarget) Start(d DaemonOpts) (string, func() error, error) {
	return "", nil, ErrUnsupported
}

func TestRunCaseSkipsUnsupportedTarget(t *testing.T) {
	r := Runner{
		Base:    Side{Name: "base", Target: unsupportedTarget{}},
		Head:    Side{Name: "head", Target: HandlerTarget{}},
		Samples: 2,
	}
	res := r.RunCase(smallLoadCase(GoalThroughput, 0.5))
	if res.Verdict != VerdictSkipped {
		t.Fatalf("verdict = %s (%s), want skipped", res.Verdict, res.Error)
	}
	if res.Failed() {
		t.Fatal("a skipped case must not fail the gate")
	}
}

// A gobench case whose package does not exist in one side's tree (the
// merge-base predating a new subsystem) skips rather than erroring.
func TestRunCaseSkipsMissingGobenchPackage(t *testing.T) {
	base := t.TempDir() // an empty "tree": no internal/wal
	c := Case{
		Name: "allocs-missing",
		Profile: Profile{
			Kind:      KindGobench,
			Package:   "./internal/wal",
			Bench:     "BenchmarkWALAppend$",
			Benchtime: "1x",
		},
		Experiment: Experiment{Goal: GoalAllocs, Tolerance: 0.01, Alpha: 0.05},
	}
	r := Runner{
		Base:    Side{Name: "base", TreeDir: base},
		Head:    Side{Name: "head", TreeDir: "../.."},
		Samples: 2,
	}
	res := r.RunCase(c)
	if res.Verdict != VerdictSkipped {
		t.Fatalf("verdict = %s (%s), want skipped", res.Verdict, res.Error)
	}
}

// A 2-node fleet load case runs end to end against the in-process
// handler target: real ring, real ownership redirects, two real
// member handlers — only the processes are synthetic. An A/A run
// must pass, and the comma-joined URL list must reach loadgen as two
// targets (asserted via Target.Start directly).
func TestRunCaseFleetAAPasses(t *testing.T) {
	url, stop, err := HandlerTarget{}.Start(DaemonOpts{Cache: 64, Sessions: 16, Fleet: 2})
	if err != nil {
		t.Fatal(err)
	}
	members := strings.Split(url, ",")
	if len(members) != 2 {
		t.Fatalf("fleet target returned %q, want two comma-joined URLs", url)
	}
	for _, m := range members {
		resp, err := http.Get(m + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var hz struct {
			Fleet struct {
				Peers []struct{ Addr, State string } `json:"peers"`
			} `json:"fleet"`
		}
		err = json.NewDecoder(resp.Body).Decode(&hz)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(hz.Fleet.Peers) != 2 {
			t.Fatalf("%s healthz fleet view has %d peers, want 2", m, len(hz.Fleet.Peers))
		}
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}

	c := smallLoadCase(GoalP99, 0.5)
	c.Name = "selftest-fleet"
	c.Profile.Mix = map[string]int{MixSession: 1}
	c.Profile.Daemon.Fleet = 2
	r := Runner{
		Base:    Side{Name: "base", Target: HandlerTarget{}},
		Head:    Side{Name: "head", Target: HandlerTarget{}},
		Samples: 2,
	}
	res := r.RunCase(c)
	if res.Error != "" {
		t.Fatalf("fleet A/A run errored: %s", res.Error)
	}
	if res.Failed() {
		t.Fatalf("fleet A/A run failed the gate: verdict=%s change=%+.1f%%", res.Verdict, 100*res.Change)
	}
}

// BinaryTarget's fleet path boots real hydrad subprocesses joined by
// -peers/-self on pre-reserved ports — the exact configuration
// hydraperf uses for a paired fleet case. Builds the current tree's
// hydrad once; skipped under -short.
func TestBinaryTargetFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots hydrad subprocesses")
	}
	bin := filepath.Join(t.TempDir(), "hydrad")
	cmd := exec.Command("go", "build", "-o", bin, "hydrac/cmd/hydrad")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building hydrad: %v: %s", err, out)
	}
	url, stop, err := BinaryTarget{Bin: bin}.Start(DaemonOpts{Cache: 64, Sessions: 16, Fleet: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	members := strings.Split(url, ",")
	if len(members) != 2 {
		t.Fatalf("fleet target returned %q, want two comma-joined URLs", url)
	}
	for _, m := range members {
		resp, err := http.Get(m + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var hz struct {
			Status string `json:"status"`
			Fleet  struct {
				Self  string                         `json:"self"`
				Peers []struct{ Addr, State string } `json:"peers"`
			} `json:"fleet"`
		}
		err = json.NewDecoder(resp.Body).Decode(&hz)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if hz.Status != "ok" || hz.Fleet.Self != m || len(hz.Fleet.Peers) != 2 {
			t.Fatalf("%s healthz = %+v, want ok with self and 2 peers", m, hz)
		}
	}
}
