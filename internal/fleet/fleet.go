// Package fleet is hydrad's peer-group membership and routing layer:
// a static peer list (the -peers flag), a background health prober
// over each peer's /healthz, and a consistent-hash ownership view
// (internal/ring) that every node computes identically from the same
// flags — no coordinator, no gossip, no consensus.
//
// States are deliberately coarse. A peer is Up (probes succeed),
// Down (DownAfter consecutive probe failures), or Draining (the peer
// itself reports "draining" on /healthz: it still serves and hands
// its sessions off one by one, but must not receive NEW sessions or
// handoffs). Hysteresis — consecutive-failure and consecutive-success
// thresholds — keeps one dropped packet from flapping the routing
// table.
//
// Routing policy, in one place because every subtle fleet bug is a
// routing-policy bug:
//
//   - Route(id): walk the ring's successor order, return the first
//     peer that is not Down. Draining peers still serve their own
//     sessions (each redirects per-session once handed off), so they
//     stay routable. Self is always routable.
//   - HandoffTarget(id): the first successor that is neither self nor
//     Down nor Draining — where a drained session should live next.
//   - CreateTarget(): any non-draining Up peer, for redirecting
//     session creation away from a draining node.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hydrac/internal/ring"
)

// Peer states. The zero value is not valid; peers start Up
// (optimistically routable) so a freshly booted fleet serves
// immediately instead of waiting out a full probe cycle.
const (
	StateUp       = "up"
	StateDown     = "down"
	StateDraining = "draining"
)

// Defaults for Options zero values.
const (
	DefaultProbeEvery   = 1 * time.Second
	DefaultProbeTimeout = 2 * time.Second
	DefaultDownAfter    = 2
	DefaultUpAfter      = 2
)

// Options shapes a Fleet.
type Options struct {
	// Self is this node's address exactly as it appears in Peers.
	Self string
	// Peers is the full static membership, self included. Addresses
	// are normalised (http:// default scheme, trailing slash
	// stripped); every node must be given the same set, in any order.
	Peers []string
	// Replicas is the ring's virtual-node count; 0 means
	// ring.DefaultReplicas.
	Replicas int
	// ProbeEvery is the background probe cadence; 0 means
	// DefaultProbeEvery, negative disables the loop (tests call
	// ProbeOnce directly).
	ProbeEvery time.Duration
	// ProbeTimeout bounds one /healthz probe; 0 means
	// DefaultProbeTimeout.
	ProbeTimeout time.Duration
	// DownAfter is how many consecutive probe failures mark a peer
	// Down; 0 means DefaultDownAfter.
	DownAfter int
	// UpAfter is how many consecutive probe successes bring a Down
	// peer back; 0 means DefaultUpAfter.
	UpAfter int
	// Client issues the probes; nil builds one with ProbeTimeout. The
	// chaos suite injects partitions here.
	Client *http.Client
	// Logf receives state transitions; nil is quiet.
	Logf func(format string, args ...any)
}

// PeerView is one row of the fleet's health table, as reported on
// /healthz.
type PeerView struct {
	Addr  string `json:"addr"`
	State string `json:"state"`
}

// peer is one remote member's probe state.
type peer struct {
	addr string

	mu    sync.Mutex
	state string
	// fails/oks count consecutive probe outcomes for hysteresis.
	fails, oks int
}

func (p *peer) get() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// Fleet is one node's view of the peer group. Safe for concurrent
// use.
type Fleet struct {
	self  string
	ring  *ring.Ring
	peers []*peer // sorted by addr; excludes self
	by    map[string]*peer
	opt   Options
	hc    *http.Client

	draining atomic.Bool
	stop     chan struct{}
	once     sync.Once
	wg       sync.WaitGroup
}

// Normalize canonicalises a peer address: "host:port" gains the
// http:// scheme, trailing slashes go. Ring identity hashes the
// normalised string, so "a:1" and "http://a:1/" are the same member
// on every node regardless of how each operator spelled the flag.
func Normalize(addr string) string {
	addr = strings.TrimSpace(addr)
	if addr == "" {
		return ""
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// New builds a fleet view. Self must appear in Peers (after
// normalisation); at least two members are required — a fleet of one
// is just a daemon.
func New(opt Options) (*Fleet, error) {
	if opt.ProbeEvery == 0 {
		opt.ProbeEvery = DefaultProbeEvery
	}
	if opt.ProbeTimeout <= 0 {
		opt.ProbeTimeout = DefaultProbeTimeout
	}
	if opt.DownAfter <= 0 {
		opt.DownAfter = DefaultDownAfter
	}
	if opt.UpAfter <= 0 {
		opt.UpAfter = DefaultUpAfter
	}
	self := Normalize(opt.Self)
	if self == "" {
		return nil, fmt.Errorf("fleet: -self is required alongside -peers")
	}
	var addrs []string
	for _, p := range opt.Peers {
		if n := Normalize(p); n != "" {
			addrs = append(addrs, n)
		}
	}
	if len(addrs) < 2 {
		return nil, fmt.Errorf("fleet: need at least 2 peers, got %d", len(addrs))
	}
	r, err := ring.New(addrs, opt.Replicas)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	f := &Fleet{self: self, ring: r, by: map[string]*peer{}, opt: opt, hc: opt.Client, stop: make(chan struct{})}
	if f.hc == nil {
		f.hc = &http.Client{Timeout: opt.ProbeTimeout}
	}
	selfSeen := false
	for _, a := range r.Nodes() {
		if a == self {
			selfSeen = true
			continue
		}
		p := &peer{addr: a, state: StateUp}
		f.peers = append(f.peers, p)
		f.by[a] = p
	}
	if !selfSeen {
		return nil, fmt.Errorf("fleet: -self %q is not in -peers %v", self, r.Nodes())
	}
	return f, nil
}

// Self returns this node's normalised address.
func (f *Fleet) Self() string { return f.self }

// Peers returns the full normalised membership, sorted, self
// included.
func (f *Fleet) Peers() []string { return f.ring.Nodes() }

// Owns reports whether id's raw ring owner is this node — health is
// deliberately ignored, so ownership is stable across peer flaps.
func (f *Fleet) Owns(id string) bool { return f.ring.Owner(id) == f.self }

// Route resolves id to the node that should serve it right now: the
// first non-Down node in ring successor order. Draining nodes still
// serve (they redirect per-session as each is handed off). The second
// return reports whether that node is this one.
func (f *Fleet) Route(id string) (addr string, isSelf bool) {
	for _, n := range f.ring.Successors(id) {
		if n == f.self {
			return n, true
		}
		if f.by[n].get() != StateDown {
			return n, false
		}
	}
	// Unreachable: self is always in the successor walk. Kept as a
	// safe fallback.
	return f.self, true
}

// HandoffTarget picks where id's state should be streamed when this
// node drains: the first successor that is a healthy, non-draining
// other node. Empty when no peer qualifies (the session then stays on
// local disk for a restart to recover).
func (f *Fleet) HandoffTarget(id string) string {
	for _, n := range f.ring.Successors(id) {
		if n == f.self {
			continue
		}
		if f.by[n].get() == StateUp {
			return n
		}
	}
	return ""
}

// CreateTarget picks a peer to take a session-create this draining
// node must refuse. Empty when no peer qualifies.
func (f *Fleet) CreateTarget() string {
	for _, p := range f.peers {
		if p.get() == StateUp {
			return p.addr
		}
	}
	return ""
}

// StartDrain flips this node into draining mode: /healthz reports
// "draining" (so peers move it to Draining without extra probes of
// luck), new creates are redirected, and the drain loop hands
// sessions off.
func (f *Fleet) StartDrain() { f.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (f *Fleet) Draining() bool { return f.draining.Load() }

// View reports the fleet health table: every member sorted by
// address, self included with its own live state.
func (f *Fleet) View() []PeerView {
	out := make([]PeerView, 0, len(f.peers)+1)
	selfState := StateUp
	if f.Draining() {
		selfState = StateDraining
	}
	out = append(out, PeerView{Addr: f.self, State: selfState})
	for _, p := range f.peers {
		out = append(out, PeerView{Addr: p.addr, State: p.get()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Start launches the background probe loop (no-op when ProbeEvery is
// negative). Stop ends it.
func (f *Fleet) Start() {
	if f.opt.ProbeEvery < 0 {
		return
	}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		t := time.NewTicker(f.opt.ProbeEvery)
		defer t.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), f.opt.ProbeTimeout)
				f.ProbeOnce(ctx)
				cancel()
			}
		}
	}()
}

// Stop terminates the probe loop and waits for it.
func (f *Fleet) Stop() {
	f.once.Do(func() { close(f.stop) })
	f.wg.Wait()
}

// ProbeOnce probes every peer once, concurrently, and applies the
// hysteresis transitions. Exposed so tests (and the chaos suite)
// drive membership deterministically instead of sleeping through
// ticker cycles.
func (f *Fleet) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, p := range f.peers {
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			ok, draining := f.probe(ctx, p.addr)
			f.apply(p, ok, draining)
		}(p)
	}
	wg.Wait()
}

// probe GETs one peer's /healthz. Any 2xx answer counts as alive; the
// body's status field distinguishes a draining peer (alive, serving,
// but leaving) from a merely degraded one (alive and staying).
func (f *Fleet) probe(ctx context.Context, addr string) (ok, draining bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/healthz", nil)
	if err != nil {
		return false, false
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return false, false
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return false, false
	}
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return false, false
	}
	return true, body.Status == StateDraining
}

// apply runs the hysteresis state machine for one probe outcome.
// Failures need DownAfter in a row to take a peer Down; recoveries
// need UpAfter in a row to bring it back. The draining flag carries
// no hysteresis: it is the peer's own explicit report, not an
// inference from packet loss.
func (f *Fleet) apply(p *peer, ok, draining bool) {
	p.mu.Lock()
	prev := p.state
	if ok {
		p.fails = 0
		p.oks++
		switch {
		case p.state == StateDown && p.oks >= f.opt.UpAfter:
			p.state = StateUp
			if draining {
				p.state = StateDraining
			}
		case p.state != StateDown && draining:
			p.state = StateDraining
		case p.state == StateDraining && !draining:
			p.state = StateUp
		}
	} else {
		p.oks = 0
		p.fails++
		if p.state != StateDown && p.fails >= f.opt.DownAfter {
			p.state = StateDown
		}
	}
	next := p.state
	p.mu.Unlock()
	if prev != next {
		f.logf("fleet: peer %s %s -> %s", p.addr, prev, next)
	}
}

func (f *Fleet) logf(format string, args ...any) {
	if f.opt.Logf != nil {
		f.opt.Logf(format, args...)
	}
}
