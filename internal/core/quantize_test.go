package core

import (
	"math/rand"
	"testing"

	"hydrac/internal/gen"
	"hydrac/internal/task"
)

func TestQuantizePeriodsRover(t *testing.T) {
	ts := roverLikeSet()
	res, err := SelectPeriods(ts, Options{})
	if err != nil || !res.Schedulable {
		t.Fatal(err)
	}
	q, err := QuantizePeriods(ts, res, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range ts.Security {
		if q.Periods[i] < res.Periods[i] {
			t.Errorf("%s: quantized period %d below exact %d", s.Name, q.Periods[i], res.Periods[i])
		}
		if q.Periods[i]%100 != 0 && q.Periods[i] != s.MaxPeriod {
			t.Errorf("%s: period %d not on the 100-tick grid", s.Name, q.Periods[i])
		}
		if q.Resp[i] > q.Periods[i] {
			t.Errorf("%s: R %d exceeds quantized period %d", s.Name, q.Resp[i], q.Periods[i])
		}
		// Less interference after rounding up: responses never grow.
		if q.Resp[i] > res.Resp[i] {
			t.Errorf("%s: quantized response %d above exact %d", s.Name, q.Resp[i], res.Resp[i])
		}
	}
}

func TestQuantizePeriodsGridOne(t *testing.T) {
	ts := roverLikeSet()
	res, err := SelectPeriods(ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := QuantizePeriods(ts, res, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Periods {
		if q.Periods[i] != res.Periods[i] {
			t.Errorf("grid 1 changed period %d -> %d", res.Periods[i], q.Periods[i])
		}
	}
}

func TestQuantizePeriodsValidation(t *testing.T) {
	ts := roverLikeSet()
	res, err := SelectPeriods(ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := QuantizePeriods(ts, res, 0); err == nil {
		t.Error("zero grid accepted")
	}
	if _, err := QuantizePeriods(ts, &Result{Schedulable: false}, 10); err == nil {
		t.Error("unschedulable result accepted")
	}
	if _, err := QuantizePeriods(ts, &Result{Schedulable: true, Periods: []task.Time{1}}, 10); err == nil {
		t.Error("mismatched result accepted")
	}
}

// Property over generated workloads: quantization always preserves
// schedulability and stays on the grid (or at Tmax).
func TestQuantizePeriodsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cfg := gen.TableThree(2)
	cfg.MaxAttempts = 30
	checked := 0
	for g := 0; g < 6; g++ {
		ts, err := cfg.Generate(rng, g)
		if err != nil {
			continue
		}
		res, err := SelectPeriods(ts, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Schedulable {
			continue
		}
		for _, grid := range []task.Time{7, 50, 250} {
			q, err := QuantizePeriods(ts, res, grid)
			if err != nil {
				t.Fatalf("group %d grid %d: %v", g, grid, err)
			}
			for i, s := range ts.Security {
				onGrid := q.Periods[i]%grid == 0 || q.Periods[i] == s.MaxPeriod
				if !onGrid {
					t.Fatalf("group %d: period %d off grid %d and not Tmax", g, q.Periods[i], grid)
				}
			}
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no schedulable draws")
	}
}
