package ids

import (
	"fmt"
	"math/rand"
	"strings"
)

// Network packet monitoring substrate (Table 1's Bro/Snort row): a
// capture ring buffer fed by the platform's network traffic and a
// signature matcher that a periodic security task drains. The
// scheduling-level behaviour is the same as the other monitors — a
// job processes a bounded batch of captured packets — so its period
// (chosen by HYDRA-C) directly bounds how long a malicious packet can
// sit unexamined in the buffer.

// Packet is one captured frame.
type Packet struct {
	// Seq is the capture sequence number.
	Seq int
	// Arrival is the capture instant in ticks.
	Arrival int64
	// Payload is the (synthetic) frame content.
	Payload string
}

// CaptureRing is a fixed-capacity capture buffer; when full, the
// oldest unprocessed packets are dropped (counted), as a real
// in-kernel capture would.
type CaptureRing struct {
	cap     int
	packets []Packet
	next    int
	dropped int
}

// NewCaptureRing creates a ring holding at most capacity packets.
func NewCaptureRing(capacity int) *CaptureRing {
	if capacity <= 0 {
		panic(fmt.Sprintf("ids: invalid capture capacity %d", capacity))
	}
	return &CaptureRing{cap: capacity}
}

// Capture appends a packet, dropping the oldest if the ring is full.
// It returns the packet's sequence number.
func (r *CaptureRing) Capture(arrival int64, payload string) int {
	seq := r.next
	r.next++
	if len(r.packets) == r.cap {
		r.packets = r.packets[1:]
		r.dropped++
	}
	r.packets = append(r.packets, Packet{Seq: seq, Arrival: arrival, Payload: payload})
	return seq
}

// Pending returns the number of unprocessed packets.
func (r *CaptureRing) Pending() int { return len(r.packets) }

// Dropped returns how many packets were lost to overflow.
func (r *CaptureRing) Dropped() int { return r.dropped }

// Drain removes and returns up to n packets, oldest first — the batch
// one monitor job processes.
func (r *CaptureRing) Drain(n int) []Packet {
	if n > len(r.packets) {
		n = len(r.packets)
	}
	out := append([]Packet(nil), r.packets[:n]...)
	r.packets = r.packets[n:]
	return out
}

// Rule is one signature: a substring that marks a packet malicious.
type Rule struct {
	Name    string
	Pattern string
}

// PacketMonitor matches drained packets against a rule set.
type PacketMonitor struct {
	rules []Rule
}

// NewPacketMonitor builds a matcher over the given rules.
func NewPacketMonitor(rules ...Rule) *PacketMonitor {
	return &PacketMonitor{rules: append([]Rule(nil), rules...)}
}

// DefaultRules is a small Snort-flavoured rule set for the examples.
func DefaultRules() []Rule {
	return []Rule{
		{Name: "shellcode-nop-sled", Pattern: "\x90\x90\x90\x90"},
		{Name: "telnet-root", Pattern: "login: root"},
		{Name: "rover-cmd-inject", Pattern: "CMD;rm -rf"},
		{Name: "exfil-marker", Pattern: "BEGIN-EXFIL"},
	}
}

// Alert is one matched signature.
type Alert struct {
	Rule   string
	Packet Packet
}

// Inspect matches a batch of packets and returns the alerts.
func (m *PacketMonitor) Inspect(batch []Packet) []Alert {
	var alerts []Alert
	for _, p := range batch {
		for _, r := range m.rules {
			if strings.Contains(p.Payload, r.Pattern) {
				alerts = append(alerts, Alert{Rule: r.Name, Packet: p})
			}
		}
	}
	return alerts
}

// BenignTraffic generates n innocuous payloads (telemetry chatter).
func BenignTraffic(rng *rand.Rand, n int) []string {
	kinds := []string{
		"TLM speed=%d heading=%d",
		"IMG frame=%d size=%d",
		"HB node=%d uptime=%d",
		"GPS lat=%d lon=%d",
	}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf(kinds[rng.Intn(len(kinds))], rng.Intn(1000), rng.Intn(1000))
	}
	return out
}
