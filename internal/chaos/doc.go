// Package chaos holds the fault-injection test suite for the hydrad
// service stack: scripted filesystem faults (internal/faultfs) against
// the durable session tier (internal/store + internal/wal) and HTTP
// overload scenarios against the daemon handler (internal/hydradhttp).
//
// The suite has no non-test code — this file exists so the scenarios
// have a documented home. Each scenario asserts the two robustness
// invariants the stack promises:
//
//  1. No committed-delta loss: every acknowledged admission survives
//     any injected fault or crash, and recovery is bit-identical to an
//     uninterrupted session over the same committed history.
//  2. Graceful degradation, never corruption: storage faults flip
//     sessions into read-only mode (503 with Retry-After at the HTTP
//     layer, ErrDegraded at the store layer) and a probe re-arms them
//     once the fault clears; overload sheds with 429, it does not
//     queue unboundedly or 500.
//
// Scenarios: fsync failure then recovery, ENOSPC during compaction,
// overload while degraded, and abrupt kill (no Close) under concurrent
// load with a torn final write. The process-level sibling — kill -9 of
// a real hydrad under hydrabench load — runs in CI's chaos job.
package chaos
