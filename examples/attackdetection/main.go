// Attack detection on the rover: the grid-world rover drives around
// capturing camera frames into the image store while a rootkit module
// is inserted at a random instant. Both security tasks run under the
// HYDRA-C schedule; the example reports when each intrusion is caught
// and compares against the HYDRA (fully partitioned) baseline on the
// same attack scenario.
//
// Run with: go run ./examples/attackdetection
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"hydrac"
	"hydrac/internal/ids"
	"hydrac/internal/rover"
	"hydrac/internal/sim"
	"hydrac/internal/task"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Drive the rover for a while: the navigation task steers around
	// obstacles, the camera task stores frames.
	world := rover.NewWorld(rng, 24, 12, 0.12)
	store := ids.NewFileSystem(rng, 16, 64)
	for step := 0; step < 40; step++ {
		world.NavigationStep()
		if step%10 == 9 {
			_ = world.CaptureFrame() // the payload tripwire protects
		}
	}
	fmt.Print(world.Render())

	// Kernel-module state with an expected profile.
	registry := ids.NewModuleRegistry(ids.DefaultRoverModules()...)
	checker := ids.NewModuleChecker(registry)

	// The attacks: a rootkit module at kmAttack, a tampered frame at
	// twAttack.
	twAttack := task.Time(rng.Int63n(15000))
	kmAttack := task.Time(rng.Int63n(15000))
	victim := rng.Intn(store.Len())
	store.Tamper(rng, victim)
	registry.Insert(ids.RootkitName(1))
	if unexpected, _ := checker.Check(registry); len(unexpected) != 1 {
		log.Fatal("rootkit not visible to the checker")
	}
	fmt.Printf("\nattacks: tamper %s at t=%d ms, rootkit %s at t=%d ms\n\n",
		store.Name(victim), twAttack, ids.RootkitName(1), kmAttack)

	ts := rover.TaskSet()
	ctx := context.Background()
	analyzer, err := hydrac.New()
	if err != nil {
		log.Fatal(err)
	}

	// HYDRA-C: Algorithm 1 periods, migrating security band.
	rep, err := analyzer.Analyze(ctx, ts)
	if err != nil || !rep.Schedulable {
		log.Fatal("HYDRA-C configuration failed: ", err)
	}
	configured, err := rep.ApplyTo(ts)
	if err != nil {
		log.Fatal(err)
	}
	report("HYDRA-C", configured, sim.SemiPartitioned, store.Len(), twAttack, kmAttack, victim)

	// HYDRA: greedy partitioned baseline on the same scenario.
	hv, err := analyzer.Baseline(ctx, ts, hydrac.SchemeHydraAggressive)
	if err != nil || !hv.Schedulable {
		log.Fatal("HYDRA configuration failed: ", err)
	}
	pinned, err := hv.ApplyTo(ts)
	if err != nil {
		log.Fatal(err)
	}
	report("HYDRA", pinned, sim.FullyPartitioned, store.Len(), twAttack, kmAttack, victim)
}

func report(scheme string, ts *task.Set, policy sim.Policy, objects int, twAttack, kmAttack task.Time, victim int) {
	out, err := sim.Run(ts, sim.Config{Policy: policy, Horizon: 90000, RecordIntervals: true})
	if err != nil {
		log.Fatal(err)
	}
	tw, err := ids.DetectionTime(out.JobsOf("tripwire"),
		ids.ScanModel{WCET: rover.TripwireWCET, Objects: objects}, twAttack, victim)
	if err != nil {
		log.Fatal(err)
	}
	km, err := ids.DetectionTime(out.JobsOf("kmodcheck"),
		ids.ScanModel{WCET: rover.KmodWCET, Objects: 1}, kmAttack, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s:\n", scheme)
	for _, s := range ts.Security {
		fmt.Printf("  %-10s period %5d ms\n", s.Name, s.Period)
	}
	describe := func(kind string, d ids.Detection, at task.Time) {
		if !d.Detected {
			fmt.Printf("  %-10s NOT detected within the horizon\n", kind)
			return
		}
		fmt.Printf("  %-10s detected at t=%6d ms, latency %6d ms (%.2e cycles)\n",
			kind, d.At, d.Latency, rover.Cycles(d.Latency))
	}
	describe("tamper", tw, twAttack)
	describe("rootkit", km, kmAttack)
	fmt.Printf("  context switches (45 s window): %d, migrations: %d\n\n",
		out.ContextSwitches*45000/int(out.Horizon), out.Migrations)
}
