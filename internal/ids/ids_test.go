package ids

import (
	"math/rand"
	"testing"

	"hydrac/internal/sim"
	"hydrac/internal/task"
)

func TestFileSystemHashingAndTamper(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fs := NewFileSystem(rng, 10, 64)
	if fs.Len() != 10 {
		t.Fatalf("Len = %d", fs.Len())
	}
	base := fs.Snapshot()
	if bad := base.Scan(fs); len(bad) != 0 {
		t.Fatalf("clean store reported mismatches: %v", bad)
	}
	if !fs.Tamper(rng, 3) {
		t.Fatal("tamper reported no change")
	}
	bad := base.Scan(fs)
	if len(bad) != 1 || bad[0] != 3 {
		t.Fatalf("scan found %v, want [3]", bad)
	}
	if !base.CheckObject(fs, 3) {
		t.Error("CheckObject missed the tampered file")
	}
	if base.CheckObject(fs, 4) {
		t.Error("CheckObject false positive")
	}
}

func TestBaselineUnknownFile(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	fs := NewFileSystem(rng, 2, 8)
	base := Baseline{} // empty database: everything is unknown
	if !base.CheckObject(fs, 0) {
		t.Error("unknown file must count as a violation")
	}
}

func TestModuleChecker(t *testing.T) {
	reg := NewModuleRegistry(DefaultRoverModules()...)
	chk := NewModuleChecker(reg)
	if u, m := chk.Check(reg); len(u) != 0 || len(m) != 0 {
		t.Fatalf("clean profile flagged: %v %v", u, m)
	}
	reg.Insert(RootkitName(7))
	u, m := chk.Check(reg)
	if len(u) != 1 || u[0] != RootkitName(7) || len(m) != 0 {
		t.Fatalf("rootkit not flagged: %v %v", u, m)
	}
	reg.Remove("vc4")
	_, m = chk.Check(reg)
	if len(m) != 1 || m[0] != "vc4" {
		t.Fatalf("missing module not flagged: %v", m)
	}
}

// A single uninterrupted job scanning 10 objects with WCET 100:
// object k is read during [10k, 10(k+1)).
func TestDetectionSingleJob(t *testing.T) {
	jobs := []sim.JobRecord{{
		Task: "tw", Release: 0, Finish: 100,
		Intervals: []sim.Interval{{Start: 0, End: 100, Core: 0}},
	}}
	m := ScanModel{WCET: 100, Objects: 10}

	// Attack at t=35 on object 7: slice [70,80) starts after 35 → detected at 80.
	d, err := DetectionTime(jobs, m, 35, 7)
	if err != nil || !d.Detected || d.At != 80 || d.Latency != 45 {
		t.Fatalf("got %+v, %v; want detect at 80", d, err)
	}

	// Attack at t=75 on object 7: the read began at 70 < 75 → this job
	// misses it; no further jobs → undetected.
	d, err = DetectionTime(jobs, m, 75, 7)
	if err != nil || d.Detected {
		t.Fatalf("evaded attack was detected: %+v", d)
	}
}

// Preemption stretches the wall-clock coverage: a job executing [0,50)
// and [200,250) reads object 7 (progress [70,80)) at wall clock
// [220,230).
func TestDetectionPreemptedJob(t *testing.T) {
	jobs := []sim.JobRecord{{
		Task: "tw", Release: 0, Finish: 250,
		Intervals: []sim.Interval{{Start: 0, End: 50, Core: 0}, {Start: 200, End: 250, Core: 1}},
	}}
	m := ScanModel{WCET: 100, Objects: 10}
	d, err := DetectionTime(jobs, m, 100, 7)
	if err != nil || !d.Detected {
		t.Fatalf("not detected: %+v %v", d, err)
	}
	if d.At != 230 || d.Latency != 130 {
		t.Fatalf("detection at %d (latency %d), want 230 (130)", d.At, d.Latency)
	}
}

// The second job catches what the first one already passed.
func TestDetectionNextJob(t *testing.T) {
	jobs := []sim.JobRecord{
		{Task: "tw", Release: 0, Finish: 100, Intervals: []sim.Interval{{Start: 0, End: 100}}},
		{Task: "tw", Release: 500, Finish: 600, Intervals: []sim.Interval{{Start: 500, End: 600}}},
	}
	m := ScanModel{WCET: 100, Objects: 10}
	d, err := DetectionTime(jobs, m, 75, 7)
	if err != nil || !d.Detected {
		t.Fatalf("not detected: %+v %v", d, err)
	}
	if d.Job != 1 || d.At != 580 {
		t.Fatalf("got job %d at %d, want job 1 at 580", d.Job, d.At)
	}
}

// Truncated job (horizon cut) must be skipped gracefully.
func TestDetectionTruncatedJob(t *testing.T) {
	jobs := []sim.JobRecord{{
		Task: "tw", Release: 0, Finish: -1,
		Intervals: []sim.Interval{{Start: 0, End: 30}},
	}}
	m := ScanModel{WCET: 100, Objects: 10}
	d, err := DetectionTime(jobs, m, 0, 7)
	if err != nil || d.Detected {
		t.Fatalf("truncated job produced detection: %+v %v", d, err)
	}
}

func TestDetectionValidation(t *testing.T) {
	m := ScanModel{WCET: 100, Objects: 10}
	if _, err := DetectionTime(nil, m, 0, 10); err == nil {
		t.Error("victim out of range accepted")
	}
	if _, err := DetectionTime(nil, ScanModel{WCET: 0, Objects: 10}, 0, 1); err == nil {
		t.Error("zero WCET accepted")
	}
}

// Whole-profile checker: Objects = 1 means a job detects iff it starts
// at or after the attack; detection at job completion.
func TestDetectionWholeJobGranularity(t *testing.T) {
	jobs := []sim.JobRecord{
		{Task: "kmod", Release: 0, Finish: 10, Intervals: []sim.Interval{{Start: 0, End: 10}}},
		{Task: "kmod", Release: 100, Finish: 110, Intervals: []sim.Interval{{Start: 100, End: 110}}},
	}
	m := ScanModel{WCET: 10, Objects: 1}
	d, err := DetectionTime(jobs, m, 5, 0)
	if err != nil || !d.Detected || d.At != 110 {
		t.Fatalf("got %+v %v, want detection at 110", d, err)
	}
}

func TestReactiveDetection(t *testing.T) {
	a0 := []sim.JobRecord{
		{Task: "a0", Release: 0, Finish: 10, Intervals: []sim.Interval{{Start: 0, End: 10}}},
		{Task: "a0", Release: 100, Finish: 110, Intervals: []sim.Interval{{Start: 100, End: 110}}},
	}
	a1 := []sim.JobRecord{
		{Task: "a1", Release: 0, Finish: 20, Intervals: []sim.Interval{{Start: 10, End: 20}}},
		{Task: "a1", Release: 150, Finish: 170, Intervals: []sim.Interval{{Start: 150, End: 170}}},
	}
	// Attack at 50: a0 detects at 110; the confirming a1 job is the one
	// starting at 150, finishing 170.
	d, err := ReactiveDetection(a0, ScanModel{WCET: 10, Objects: 1}, a1, 50, 0)
	if err != nil || !d.Detected || d.At != 170 || d.Latency != 120 {
		t.Fatalf("got %+v %v, want confirmation at 170", d, err)
	}
	// No a1 job after a0's detection → unconfirmed.
	d, err = ReactiveDetection(a0, ScanModel{WCET: 10, Objects: 1}, a1[:1], 50, 0)
	if err != nil || d.Detected {
		t.Fatalf("confirmed without a follow-up job: %+v", d)
	}
}

// End-to-end: simulate the scanner under load, inject a real tamper
// into the synthetic store, and confirm the trace-based detection
// instant agrees with an actual baseline scan at that instant.
func TestDetectionEndToEnd(t *testing.T) {
	ts := &task.Set{
		Cores: 2,
		RT:    []task.RTTask{{Name: "nav", WCET: 24, Period: 50, Deadline: 50, Core: 0}},
		Security: []task.SecurityTask{
			{Name: "tw", WCET: 100, Period: 300, MaxPeriod: 1000, Priority: 0, Core: -1},
		},
	}
	out, err := sim.Run(ts, sim.Config{Policy: sim.SemiPartitioned, Horizon: 2000, RecordIntervals: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	fs := NewFileSystem(rng, 20, 32)
	base := fs.Snapshot()
	victim := 13
	attack := task.Time(333)
	fs.Tamper(rng, victim)

	jobs := out.JobsOf("tw")
	d, err := DetectionTime(jobs, ScanModel{WCET: 100, Objects: 20}, attack, victim)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Detected {
		t.Fatal("attack not detected within 2000 ticks despite periodic scans")
	}
	if d.At <= attack {
		t.Fatalf("detection at %d not after attack %d", d.At, attack)
	}
	// The store really is flagged by a full scan.
	if bad := base.Scan(fs); len(bad) != 1 || bad[0] != victim {
		t.Fatalf("real scan found %v", bad)
	}
}
