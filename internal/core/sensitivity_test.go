package core

import (
	"testing"

	"hydrac/internal/task"
)

func TestWCETSensitivityRover(t *testing.T) {
	ts := roverLikeSet()
	maxW, err := WCETSensitivity(ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range ts.Security {
		if maxW[i] < s.WCET {
			t.Errorf("%s: sensitivity %d below current WCET %d", s.Name, maxW[i], s.WCET)
		}
		if maxW[i] > s.MaxPeriod {
			t.Errorf("%s: sensitivity %d beyond Tmax %d", s.Name, maxW[i], s.MaxPeriod)
		}
	}
	// The bound is tight: one tick above must be unschedulable.
	for i := range ts.Security {
		probe := ts.Clone()
		probe.Security[i].WCET = maxW[i]
		res, err := SelectPeriods(probe, Options{})
		if err != nil || !res.Schedulable {
			t.Fatalf("%s: claimed-feasible WCET %d rejected (%v)", ts.Security[i].Name, maxW[i], err)
		}
		if maxW[i] < ts.Security[i].MaxPeriod {
			probe.Security[i].WCET = maxW[i] + 1
			res, err = SelectPeriods(probe, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Schedulable {
				t.Errorf("%s: WCET %d+1 still schedulable; sensitivity not maximal", ts.Security[i].Name, maxW[i])
			}
		}
	}
}

func TestWCETSensitivityUnschedulableSet(t *testing.T) {
	ts := roverLikeSet()
	for i := range ts.Security {
		ts.Security[i].MaxPeriod = 5400
	}
	maxW, err := WCETSensitivity(ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range maxW {
		if w != 0 {
			t.Errorf("task %d: sensitivity %d for an unschedulable set, want 0", i, w)
		}
	}
}

func TestScaleSensitivityRover(t *testing.T) {
	ts := roverLikeSet()
	k, err := ScaleSensitivity(ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if k < 1 {
		t.Fatalf("schedulable set reports scale %v < 1", k)
	}
	// Applying the factor keeps the set schedulable.
	probe := ts.Clone()
	for i := range probe.Security {
		w := task.Time(float64(probe.Security[i].WCET) * k)
		if w < 1 {
			w = 1
		}
		probe.Security[i].WCET = min(w, probe.Security[i].MaxPeriod)
	}
	res, err := SelectPeriods(probe, Options{})
	if err != nil || !res.Schedulable {
		t.Fatalf("scale %v claimed feasible but rejected (%v)", k, err)
	}
}

func TestScaleSensitivityOverloaded(t *testing.T) {
	ts := roverLikeSet()
	// Make the monitors far too big: the factor must come back < 1.
	for i := range ts.Security {
		ts.Security[i].WCET = ts.Security[i].MaxPeriod - 1
	}
	k, err := ScaleSensitivity(ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if k >= 1 {
		t.Fatalf("overloaded set reports scale %v >= 1", k)
	}
}

func TestScaleSensitivityNoSecurity(t *testing.T) {
	ts := roverLikeSet()
	ts.Security = nil
	if _, err := ScaleSensitivity(ts, Options{}); err == nil {
		t.Fatal("empty security band accepted")
	}
}
