package hydradhttp

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// blockingHandler parks every request until release is closed,
// signalling entry on entered.
type blockingHandler struct {
	entered chan struct{}
	release chan struct{}
}

func (h *blockingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.entered <- struct{}{}
	// Deliberately ignores r.Context(): the slot stays held until the
	// test releases it, so slot-freeing never races test assertions.
	<-h.release
	w.WriteHeader(http.StatusOK)
}

func gateServer(t *testing.T, cfg Config, next http.Handler) (*gate, *httptest.Server) {
	t.Helper()
	g := newGate(next, cfg)
	srv := httptest.NewServer(g)
	t.Cleanup(srv.Close)
	return g, srv
}

// A full gate (inflight and queue both occupied) sheds instantly with
// 429 + Retry-After; a freed slot admits new work again.
func TestGateShedsWith429(t *testing.T) {
	h := &blockingHandler{entered: make(chan struct{}, 8), release: make(chan struct{})}
	g, srv := gateServer(t, Config{MaxInflight: 1, MaxQueue: 0, QueueWait: 50 * time.Millisecond}, h)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(srv.URL + "/v1/analyze")
		if err != nil {
			t.Error(err)
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("occupying request: got %d, want 200", resp.StatusCode)
		}
	}()
	<-h.entered // the slot is now held

	resp, err := http.Get(srv.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity request: got %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 carried no Retry-After")
	}
	if g.shed.Load() != 1 {
		t.Fatalf("shed counter = %d, want 1", g.shed.Load())
	}

	close(h.release)
	wg.Wait()

	// The slot is free again: the next request sails through.
	resp2, err := http.Get(srv.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-release request: got %d, want 200", resp2.StatusCode)
	}
}

// A queued request rides out a short wait and is admitted when the
// inflight slot frees, instead of being shed.
func TestGateQueueAdmitsWhenSlotFrees(t *testing.T) {
	h := &blockingHandler{entered: make(chan struct{}, 8), release: make(chan struct{})}
	_, srv := gateServer(t, Config{MaxInflight: 1, MaxQueue: 4, QueueWait: 5 * time.Second}, h)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(srv.URL + "/v1/analyze")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-h.entered

	done := make(chan int, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/v1/analyze")
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	// Give the second request time to queue, then free the slot. Both
	// the queued request and the occupier need the handler released.
	time.Sleep(20 * time.Millisecond)
	close(h.release)
	<-h.entered // queued request reaches the handler
	if code := <-done; code != http.StatusOK {
		t.Fatalf("queued request: got %d, want 200", code)
	}
	wg.Wait()
}

// A request whose server-imposed deadline (RequestTimeout) expires
// while queued gets 503, not 429: the deadline clock starts before the
// queue, so waiting cannot be used to outlive the request budget.
func TestGateQueueDeadlineIs503(t *testing.T) {
	h := &blockingHandler{entered: make(chan struct{}, 8), release: make(chan struct{})}
	defer close(h.release)
	g, srv := gateServer(t, Config{
		MaxInflight: 1, MaxQueue: 4,
		QueueWait:      5 * time.Second,
		RequestTimeout: 30 * time.Millisecond,
	}, h)

	go http.Get(srv.URL + "/v1/analyze")
	<-h.entered

	resp, err := http.Get(srv.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deadlined queued request: got %d, want 503", resp.StatusCode)
	}
	if g.deadlined.Load() != 1 {
		t.Fatalf("deadlined counter = %d, want 1", g.deadlined.Load())
	}
	if g.shed.Load() != 0 {
		t.Fatalf("shed counter = %d, want 0", g.shed.Load())
	}
}

// /healthz bypasses the gate: it answers even when every slot and
// queue position is taken — exactly when operators need it.
func TestGateHealthzBypassesSaturation(t *testing.T) {
	h := &blockingHandler{entered: make(chan struct{}, 8), release: make(chan struct{})}
	defer close(h.release)
	mux := http.NewServeMux()
	mux.Handle("/v1/analyze", h)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	})
	_, srv := gateServer(t, Config{MaxInflight: 1, MaxQueue: 0, QueueWait: time.Minute}, mux)

	go http.Get(srv.URL + "/v1/analyze")
	<-h.entered

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under saturation: got %d, want 200", resp.StatusCode)
	}
}

// With MaxInflight 0 the gate is wiring only: requests pass through
// untouched and the health snapshot says the gate is off.
func TestGateDisabledPassesThrough(t *testing.T) {
	g, srv := gateServer(t, Config{}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	for i := 0; i < 4; i++ {
		resp, err := http.Get(srv.URL + "/v1/analyze")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("got %d, want 200", resp.StatusCode)
		}
	}
	snap := g.healthSnapshot()
	if snap["max_inflight"] != 0 {
		t.Fatalf("disabled gate snapshot reports max_inflight %v", snap["max_inflight"])
	}
}

// The per-request deadline (RequestTimeout) cuts a long handler off
// and, through writeAnalysisError, surfaces as a 503 — not a silent
// empty 200.
func TestRequestTimeoutSurfacesAs503(t *testing.T) {
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			writeAnalysisError(w, r, r.Context().Err())
		case <-time.After(5 * time.Second):
			w.WriteHeader(http.StatusOK)
		}
	})
	_, srv := gateServer(t, Config{RequestTimeout: 30 * time.Millisecond}, slow)

	resp, err := http.Get(srv.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deadlined request: got %d, want 503", resp.StatusCode)
	}
}
