#!/usr/bin/env bash
# Regenerates BENCH_PR5.json, the machine-readable before/after
# snapshot of the throughput-layer benchmarks: the kernel/pipeline
# side (BenchmarkAnalyzeCold, BenchmarkAnalyzeCold50,
# BenchmarkAdmitDelta, BenchmarkSweepParallel, BenchmarkAnalyzeBatch,
# BenchmarkAnalyzeCached) plus the hydrad service benchmarks
# (BenchmarkHydradAnalyzeCacheHit*) and a short hydrabench closed-loop
# run (RPS + latency quantiles against the in-process service).
#
# Usage:
#   scripts/bench.sh                  # re-run, rewrite the "after" side
#   scripts/bench.sh --before out.txt # also replace the "before" side
#                                     # from a saved `go test -bench`
#                                     # output (e.g. from the base
#                                     # commit's bench artifact)
#   COUNT=5 scripts/bench.sh          # more samples per benchmark
#   SKIP_HYDRABENCH=1 scripts/bench.sh  # benches only, no load run
set -eu
cd "$(dirname "$0")/.."

COUNT="${COUNT:-3}"
OUT="${OUT:-BENCH_PR5.json}"
BEFORE_TXT=""
if [ "${1:-}" = "--before" ]; then
  BEFORE_TXT="$2"
fi

AFTER_TXT="$(mktemp)"
LOAD_JSON="$(mktemp)"
trap 'rm -f "$AFTER_TXT" "$LOAD_JSON"' EXIT
go test -run '^$' \
  -bench 'BenchmarkAnalyzeCold$|BenchmarkAnalyzeCold50$|BenchmarkAdmitDelta$|BenchmarkSweepParallel|BenchmarkAnalyzeBatch$|BenchmarkAnalyzeCached$' \
  -benchmem -count="$COUNT" . | tee "$AFTER_TXT"
go test -run '^$' \
  -bench 'BenchmarkHydradAnalyzeCacheHit' \
  -benchmem -count="$COUNT" ./cmd/hydrad | tee -a "$AFTER_TXT"

if [ -z "${SKIP_HYDRABENCH:-}" ]; then
  go run ./cmd/hydrabench -c 1,4 -d 2s -out "$LOAD_JSON"
else
  echo '{}' > "$LOAD_JSON"
fi

python3 - "$AFTER_TXT" "$BEFORE_TXT" "$LOAD_JSON" "$OUT" <<'PY'
import json, re, sys

def parse(path):
    # Benchmark lines: name-N  iters  X ns/op [...]  Y B/op  Z allocs/op
    out = {}
    line_re = re.compile(r'^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$')
    for line in open(path):
        m = line_re.match(line.strip())
        if not m:
            continue
        name, rest = m.groups()
        fields = {}
        for value, unit in re.findall(r'([\d.]+)\s+(\S+)', rest):
            fields.setdefault(unit, []).append(float(value))
        rec = out.setdefault(name, {"ns_per_op": [], "b_per_op": [], "allocs_per_op": []})
        if 'ns/op' in fields:
            rec["ns_per_op"].append(fields['ns/op'][0])
        if 'B/op' in fields:
            rec["b_per_op"].append(fields['B/op'][0])
        if 'allocs/op' in fields:
            rec["allocs_per_op"].append(fields['allocs/op'][0])
    return {
        name: {
            "samples": len(rec["ns_per_op"]),
            **{k: round(sum(v) / len(v), 1) for k, v in rec.items() if v},
        }
        for name, rec in out.items() if rec["ns_per_op"]
    }

after = parse(sys.argv[1])
path = sys.argv[4]
try:
    doc = json.load(open(path))
except FileNotFoundError:
    doc = {"pr": 5, "benchmarks": {}}
if sys.argv[2]:
    for name, rec in parse(sys.argv[2]).items():
        doc["benchmarks"].setdefault(name, {})["before"] = rec
for name, rec in after.items():
    entry = doc["benchmarks"].setdefault(name, {})
    entry["after"] = rec
    if "before" in entry and entry["before"].get("ns_per_op"):
        entry["speedup"] = round(entry["before"]["ns_per_op"] / rec["ns_per_op"], 2)
        if entry["before"].get("allocs_per_op") and rec.get("allocs_per_op"):
            entry["allocs_ratio"] = round(
                entry["before"]["allocs_per_op"] / max(rec["allocs_per_op"], 0.001), 2)
load = json.load(open(sys.argv[3]))
if load.get("levels"):
    doc["hydrabench"] = load
doc["note"] = ("mean over per-benchmark samples of `go test -bench` output; "
               "hydrabench = closed-loop RPS/latency against the in-process "
               "service; regenerate with scripts/bench.sh")
json.dump(doc, open(path, "w"), indent=2, sort_keys=True)
open(path, "a").write("\n")
print(f"wrote {path}")
PY
