package regression

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// HistoryEntry is one line of a case's JSONL history — a condensed
// CaseResult plus provenance, so `hydraperf history <case>` can plot
// the metric's trajectory across PRs.
type HistoryEntry struct {
	// When is an RFC 3339 timestamp of the run (or the PR label for
	// seeded entries migrated from pre-harness benchmark files).
	When string `json:"when"`
	// Label names the run: a PR tag ("pr4"), a CI run id, or "local".
	Label   string  `json:"label,omitempty"`
	BaseSHA string  `json:"base_sha,omitempty"`
	HeadSHA string  `json:"head_sha,omitempty"`
	Goal    Goal    `json:"goal"`
	Metric  string  `json:"metric"`
	Unit    string  `json:"unit"`
	Base    float64 `json:"base_median"`
	Head    float64 `json:"head_median"`
	Change  float64 `json:"change"`
	P       float64 `json:"p,omitempty"`
	Verdict string  `json:"verdict"`
	// Note carries free-form provenance for seeded entries (e.g. which
	// pre-harness benchmark a number came from).
	Note string `json:"note,omitempty"`
}

// EntryFromResult condenses a finished CaseResult into a history line.
func EntryFromResult(r CaseResult, when, label string) HistoryEntry {
	return HistoryEntry{
		When:    when,
		Label:   label,
		BaseSHA: r.BaseSHA,
		HeadSHA: r.HeadSHA,
		Goal:    r.Goal,
		Metric:  r.Metric,
		Unit:    r.Unit,
		Base:    r.BaseMedian,
		Head:    r.HeadMedian,
		Change:  r.Change,
		P:       r.P,
		Verdict: r.Verdict,
	}
}

// HistoryPath returns the JSONL file for a case under dir.
func HistoryPath(dir, caseName string) string {
	return filepath.Join(dir, caseName+".jsonl")
}

// AppendHistory appends one entry to the case's JSONL file, creating
// the directory and file as needed.
func AppendHistory(dir, caseName string, e HistoryEntry) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(HistoryPath(dir, caseName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(append(b, '\n')); err != nil {
		return err
	}
	return f.Close()
}

// ReadHistory loads a case's JSONL history in file order. A missing
// file is an empty history, not an error; a malformed line is an
// error, since silently dropping history would mask corruption.
func ReadHistory(dir, caseName string) ([]HistoryEntry, error) {
	f, err := os.Open(HistoryPath(dir, caseName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []HistoryEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for line := 1; sc.Scan(); line++ {
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var e HistoryEntry
		if err := json.Unmarshal(text, &e); err != nil {
			return nil, fmt.Errorf("%s line %d: %w", HistoryPath(dir, caseName), line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// HistoryTable renders a case's trajectory for terminals.
func HistoryTable(entries []HistoryEntry) string {
	if len(entries) == 0 {
		return "(no history)\n"
	}
	var b []byte
	b = fmt.Appendf(b, "%-22s %-8s %-14s %14s %14s %9s  %s\n",
		"WHEN", "LABEL", "METRIC", "BASE", "HEAD", "CHANGE", "VERDICT")
	for _, e := range entries {
		b = fmt.Appendf(b, "%-22s %-8s %-14s %14s %14s %+8.1f%%  %s\n",
			e.When, e.Label, e.Metric,
			formatValue(e.Base, e.Unit), formatValue(e.Head, e.Unit),
			100*e.Change, e.Verdict)
	}
	return string(b)
}
