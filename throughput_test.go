package hydrac_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"sync"
	"testing"

	"hydrac"
	"hydrac/internal/gen"
)

// throughputSets draws a deterministic mix of Table-3 sets across the
// utilisation groups.
func throughputSets(t testing.TB, n int) []*hydrac.TaskSet {
	t.Helper()
	cfg := gen.TableThree(2)
	var sets []*hydrac.TaskSet
	for i := 0; len(sets) < n; i++ {
		ts, err := cfg.Generate(rand.New(rand.NewSource(int64(i+1))), i%6)
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, ts)
	}
	return sets
}

// canonicalJSON renders a report with its per-call stamps scrubbed,
// for byte-level comparison.
func canonicalJSON(t testing.TB, rep *hydrac.Report) []byte {
	t.Helper()
	cp := rep.Clone()
	cp.Timing = nil
	cp.FromCache = false
	b, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestPooledScratchStress hammers one Analyzer from many goroutines —
// Analyze, AnalyzeBatch and admission sessions interleaved — and
// asserts every report is byte-identical to a fresh-Analyzer,
// fresh-scratch analysis of the same set. Run under -race this is the
// proof that recycled kernel workspaces never leak state between
// concurrent analyses (the pool hands a scratch to exactly one
// goroutine at a time, and a Reset re-primes every buffer).
func TestPooledScratchStress(t *testing.T) {
	const (
		goroutines = 8
		rounds     = 6
	)
	sets := throughputSets(t, 10)

	// The expectation: each set analysed once, in isolation.
	want := make([][]byte, len(sets))
	for i, ts := range sets {
		fresh, err := hydrac.New()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := fresh.Analyze(context.Background(), ts)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = canonicalJSON(t, rep)
	}

	shared, err := hydrac.New(hydrac.WithCache(4)) // small: plenty of misses stay on the analysis path
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				switch (g + round) % 3 {
				case 0: // single analyses
					for i, ts := range sets {
						rep, err := shared.Analyze(ctx, ts)
						if err != nil {
							errc <- err
							return
						}
						if !bytes.Equal(canonicalJSON(t, rep), want[i]) {
							t.Errorf("goroutine %d round %d: Analyze(set %d) drifted from fresh-scratch result", g, round, i)
							return
						}
					}
				case 1: // batch
					reps, err := shared.AnalyzeBatch(ctx, sets)
					if err != nil {
						errc <- err
						return
					}
					for i, rep := range reps {
						if !bytes.Equal(canonicalJSON(t, rep), want[i]) {
							t.Errorf("goroutine %d round %d: batch report %d drifted from fresh-scratch result", g, round, i)
							return
						}
					}
				default: // sessions (the admission engine's pinned scratch)
					_, rep, err := shared.NewSession(ctx, sets[g%len(sets)])
					if err != nil {
						errc <- err
						return
					}
					if !bytes.Equal(canonicalJSON(t, rep), want[g%len(sets)]) {
						t.Errorf("goroutine %d round %d: session report drifted from fresh-scratch result", g, round)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestAnalysisWorkersBitIdentical pins the tentpole's intra-analysis
// parallelism contract: any WithAnalysisWorkers value produces
// byte-identical reports (the per-core RTA verdicts merge in core
// order; the conjunction is order-independent).
func TestAnalysisWorkersBitIdentical(t *testing.T) {
	sets := throughputSets(t, 8)
	serial, err := hydrac.New()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var want [][]byte
	for _, ts := range sets {
		rep, err := serial.Analyze(ctx, ts)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, canonicalJSON(t, rep))
	}
	for _, workers := range []int{2, 3, 8} {
		par, err := hydrac.New(hydrac.WithAnalysisWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		for i, ts := range sets {
			rep, err := par.Analyze(ctx, ts)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(canonicalJSON(t, rep), want[i]) {
				t.Fatalf("workers=%d: set %d drifted from the serial analysis", workers, i)
			}
		}
		// Sessions route the worker count through the admission
		// engine's memoized screen; same contract.
		_, rep, err := par.NewSession(ctx, sets[0])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canonicalJSON(t, rep), want[0]) {
			t.Fatalf("workers=%d: session report drifted from the serial analysis", workers)
		}
	}
}

// TestAnalyzeBatchSteadyStateAllocs is the regression gate for the
// pooled-scratch batch path: per-item allocations must stay at
// report-shaping level (clones, report slices) with no per-analysis
// kernel workspace. The bound is ~2x the measured steady state at the
// time of writing, so a reintroduced per-analysis NewScratch (~10
// buffer allocations each, growing with set size) trips it.
func TestAnalyzeBatchSteadyStateAllocs(t *testing.T) {
	sets := throughputSets(t, 4)
	a, err := hydrac.New(hydrac.WithBatchWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := a.AnalyzeBatch(ctx, sets); err != nil {
		t.Fatal(err) // warm the pool
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := a.AnalyzeBatch(ctx, sets); err != nil {
			t.Fatal(err)
		}
	})
	perItem := avg / float64(len(sets))
	if perItem > 160 {
		t.Fatalf("AnalyzeBatch allocates %.1f objects per analysed set; want <= 160 (pooled steady state)", perItem)
	}
}

// TestAnalyzeEnvelopeCacheHitAllocs is the regression gate for the
// zero-copy service hot path: a cache hit must serve pre-encoded
// bytes — no report clone, no JSON marshal. The handful of remaining
// allocations are the canonical-hash computation of the lookup key.
func TestAnalyzeEnvelopeCacheHitAllocs(t *testing.T) {
	sets := throughputSets(t, 1)
	a, err := hydrac.New(hydrac.WithCache(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var marshalled []byte
	for i := 0; i < 2; i++ { // miss, then hit (memoizes the envelope)
		b, _, err := a.AnalyzeEnvelope(ctx, sets[0])
		if err != nil {
			t.Fatal(err)
		}
		marshalled = b
	}
	rep, err := hydrac.ReadReport(bytes.NewReader(marshalled))
	if err != nil {
		t.Fatalf("hit envelope does not parse: %v", err)
	}
	if !rep.FromCache || rep.Timing != nil {
		t.Fatalf("hit envelope must be canonical (FromCache, no Timing): %+v", rep)
	}

	avg := testing.AllocsPerRun(50, func() {
		if _, _, err := a.AnalyzeEnvelope(ctx, sets[0]); err != nil {
			t.Fatal(err)
		}
	})
	// What a hit must NOT pay: the legacy per-hit work — a report
	// clone plus a fresh JSON marshal (Analyze + WriteReport).
	// Calibrate against that path on this very workload so the bound
	// tracks the report size; the acceptance criterion is a >= 5x
	// reduction.
	legacyAllocs := testing.AllocsPerRun(50, func() {
		r, err := a.Analyze(ctx, sets[0])
		if err != nil {
			t.Fatal(err)
		}
		if err := hydrac.WriteReport(io.Discard, r); err != nil {
			t.Fatal(err)
		}
	})
	if avg*5 > legacyAllocs {
		t.Fatalf("cache-hit AnalyzeEnvelope allocates %.1f objects, legacy clone+marshal path %.1f; want >= 5x reduction", avg, legacyAllocs)
	}

	// And the bytes of every hit are literally the same slice content.
	b2, cached, err := a.AnalyzeEnvelope(ctx, sets[0])
	if err != nil || !cached {
		t.Fatalf("expected a cache hit (err=%v cached=%v)", err, cached)
	}
	if !bytes.Equal(marshalled, b2) {
		t.Fatal("hit envelopes drifted between calls")
	}
}
