package rover

import (
	"fmt"
	"math/rand"
	"strings"
)

// World is a small grid model of the rover's environment used by the
// example applications: the navigation task reads the infrared sensor
// (ST188 stand-in), steers around obstacles, and the camera task
// periodically captures a frame of the scene into the image data
// store. The world exists to make the example workloads concrete; the
// schedulability results do not depend on it.
type World struct {
	W, H      int
	obstacles map[[2]int]bool
	X, Y      int
	Dir       int // 0=east 1=south 2=west 3=north
	Moves     int
	Bumps     int
}

var dirVec = [4][2]int{{1, 0}, {0, 1}, {-1, 0}, {0, -1}}

// NewWorld creates a w×h arena with the given obstacle density and a
// rover at the centre facing east.
func NewWorld(rng *rand.Rand, w, h int, density float64) *World {
	wd := &World{W: w, H: h, obstacles: map[[2]int]bool{}, X: w / 2, Y: h / 2}
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			if (x == wd.X && y == wd.Y) || rng.Float64() >= density {
				continue
			}
			wd.obstacles[[2]int{x, y}] = true
		}
	}
	return wd
}

// SensorBlocked models the forward IR proximity sensor: true when the
// next cell in the current direction is an obstacle or a wall.
func (w *World) SensorBlocked() bool {
	nx, ny := w.X+dirVec[w.Dir][0], w.Y+dirVec[w.Dir][1]
	if nx < 0 || ny < 0 || nx >= w.W || ny >= w.H {
		return true
	}
	return w.obstacles[[2]int{nx, ny}]
}

// NavigationStep is one job of the navigation task: read the sensor,
// turn right while blocked (obstacle avoidance), otherwise advance one
// cell.
func (w *World) NavigationStep() {
	for turns := 0; turns < 4 && w.SensorBlocked(); turns++ {
		w.Dir = (w.Dir + 1) % 4
		w.Bumps++
	}
	if w.SensorBlocked() {
		return // boxed in
	}
	w.X += dirVec[w.Dir][0]
	w.Y += dirVec[w.Dir][1]
	w.Moves++
}

// CaptureFrame is one job of the camera task: render the rover's
// local 8×8 neighbourhood as raw "pixels" — the payload the Tripwire
// task protects.
func (w *World) CaptureFrame() []byte {
	const r = 4
	frame := make([]byte, 0, (2*r)*(2*r))
	for dy := -r; dy < r; dy++ {
		for dx := -r; dx < r; dx++ {
			x, y := w.X+dx, w.Y+dy
			switch {
			case x < 0 || y < 0 || x >= w.W || y >= w.H:
				frame = append(frame, 0xFF)
			case w.obstacles[[2]int{x, y}]:
				frame = append(frame, 0x80)
			case x == w.X && y == w.Y:
				frame = append(frame, 0x01)
			default:
				frame = append(frame, 0x00)
			}
		}
	}
	return frame
}

// Render draws the arena for the examples.
func (w *World) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rover at (%d,%d) dir=%d moves=%d bumps=%d\n", w.X, w.Y, w.Dir, w.Moves, w.Bumps)
	for y := 0; y < w.H; y++ {
		for x := 0; x < w.W; x++ {
			switch {
			case x == w.X && y == w.Y:
				b.WriteByte('R')
			case w.obstacles[[2]int{x, y}]:
				b.WriteByte('#')
			default:
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
