package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hydrac"
	"hydrac/internal/faultfs"
	"hydrac/internal/store"
)

func newAnalyzer(t *testing.T) *hydrac.Analyzer {
	t.Helper()
	a, err := hydrac.New()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func base() *hydrac.TaskSet {
	return &hydrac.TaskSet{
		Cores: 2,
		RT: []hydrac.RTTask{
			{Name: "rt0", WCET: 2, Period: 20, Deadline: 20, Core: 0, Priority: 0},
			{Name: "rt1", WCET: 3, Period: 30, Deadline: 30, Core: 1, Priority: 1},
		},
		Security: []hydrac.SecurityTask{
			{Name: "sec0", WCET: 2, MaxPeriod: 200, Core: -1, Priority: 0},
		},
	}
}

// monitorDelta is the k-th admissible probe delta, with a name prefix
// so concurrent sessions stay distinguishable.
func monitorDelta(prefix string, k int) hydrac.Delta {
	return hydrac.Delta{AddSecurity: []hydrac.SecurityTask{{
		Name: fmt.Sprintf("%s%03d", prefix, k), WCET: 1,
		MaxPeriod: hydrac.Time(500 + 10*k), Core: -1, Priority: 100 + k,
	}}}
}

func setBytes(t *testing.T, set *hydrac.TaskSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := hydrac.EncodeTaskSet(&buf, set); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// controlSet replays deltas through an uninterrupted in-memory session
// and returns the resulting placed set — the ground truth every
// fault-injected recovery must match byte for byte.
func controlSet(t *testing.T, a *hydrac.Analyzer, deltas []hydrac.Delta) []byte {
	t.Helper()
	ctx := context.Background()
	sess, _, err := a.NewSession(ctx, base())
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range deltas {
		_, admitted, err := sess.Admit(ctx, d)
		if err != nil || !admitted {
			t.Fatalf("control delta %d: admitted=%v err=%v", i, admitted, err)
		}
	}
	return setBytes(t, sess.Set())
}

// admit applies one delta through the store's acquire/release cycle.
func admit(st *store.Store, id string, d hydrac.Delta) error {
	ctx := context.Background()
	sess, release, err := st.Acquire(ctx, id)
	if err != nil {
		return err
	}
	defer release()
	_, admitted, err := sess.Admit(ctx, d)
	if err != nil {
		return err
	}
	if !admitted {
		return fmt.Errorf("delta denied")
	}
	return nil
}

func storeSet(t *testing.T, st *store.Store, id string) []byte {
	t.Helper()
	sess, release, err := st.Acquire(context.Background(), id)
	if err != nil {
		t.Fatalf("acquire %s: %v", id, err)
	}
	defer release()
	return setBytes(t, sess.Set())
}

// An fsync failure mid-commit aborts exactly that commit, flips the
// session into degraded read-only mode (mutations refused fast, reads
// served), and a probe re-arms it from disk — after which the session
// is bit-identical to an uninterrupted one over the committed history.
func TestFsyncFailureDegradesThenProbeRecovers(t *testing.T) {
	dir := t.TempDir()
	a := newAnalyzer(t)
	in := faultfs.Wrap(nil)
	st, err := store.Open(dir, a, store.Options{FS: in, ProbeEvery: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx := context.Background()
	if _, err := st.Create(ctx, "s1", base()); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if err := admit(st, "s1", monitorDelta("mon", k)); err != nil {
			t.Fatalf("delta %d: %v", k, err)
		}
	}

	// The next WAL fsync fails once — the disk hiccups under commit 3.
	in.Fail(faultfs.Rule{Op: faultfs.OpSync, Path: ".wal", Nth: 1})
	err = admit(st, "s1", monitorDelta("mon", 3))
	if !errors.Is(err, store.ErrStorage) {
		t.Fatalf("commit over failing fsync: err = %v, want ErrStorage", err)
	}
	// Further mutations are refused fast with the degraded marker (the
	// disk is not touched again), but reads keep working.
	err = admit(st, "s1", monitorDelta("mon", 4))
	if !errors.Is(err, store.ErrDegraded) {
		t.Fatalf("mutation while degraded: err = %v, want ErrDegraded", err)
	}
	if got, want := storeSet(t, st, "s1"), controlSet(t, a, []hydrac.Delta{
		monitorDelta("mon", 0), monitorDelta("mon", 1), monitorDelta("mon", 2),
	}); !bytes.Equal(got, want) {
		t.Fatal("degraded session's readable state diverged from the committed history")
	}
	if h := st.Health(); h.OK() || h.Degraded != 1 {
		t.Fatalf("health = %+v, want 1 degraded session", h)
	}

	// The fault was one-shot, so the disk is healthy again: one probe
	// re-arms the session and mutations flow.
	rearmed, degraded := st.Probe(ctx)
	if rearmed != 1 || degraded != 0 {
		t.Fatalf("Probe = (%d, %d), want (1, 0)", rearmed, degraded)
	}
	if h := st.Health(); !h.OK() {
		t.Fatalf("health after probe = %+v, want OK", h)
	}
	var deltas []hydrac.Delta
	for k := 0; k < 6; k++ {
		deltas = append(deltas, monitorDelta("mon", k))
	}
	for k := 3; k < 6; k++ {
		if err := admit(st, "s1", monitorDelta("mon", k)); err != nil {
			t.Fatalf("delta %d after re-arm: %v", k, err)
		}
	}
	if got, want := storeSet(t, st, "s1"), controlSet(t, a, deltas); !bytes.Equal(got, want) {
		t.Fatal("re-armed session diverged from an uninterrupted control session")
	}

	// And the whole history survives a restart, bit-identically.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir, a, store.Options{ProbeEvery: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got, want := storeSet(t, st2, "s1"), controlSet(t, a, deltas); !bytes.Equal(got, want) {
		t.Fatal("restarted session diverged from an uninterrupted control session")
	}
}

// ENOSPC while writing a compaction snapshot must not lose or refuse
// the commits that triggered it: the old generation stays whole and
// current, compaction is retried each commit, and once space frees the
// rotation completes and recovery reads the new generation.
func TestENOSPCDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	a := newAnalyzer(t)
	in := faultfs.Wrap(nil)
	st, err := store.Open(dir, a, store.Options{FS: in, ProbeEvery: -1, CompactEvery: 4, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx := context.Background()
	if _, err := st.Create(ctx, "s1", base()); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if err := admit(st, "s1", monitorDelta("mon", k)); err != nil {
			t.Fatalf("delta %d: %v", k, err)
		}
	}

	// Every write to the generation-1 snapshot hits a full disk.
	in.Fail(faultfs.Rule{Op: faultfs.OpWrite, Path: "snap-1", Err: faultfs.ENOSPC})
	// Commits 3 and 4 trigger (failing) compactions — and must still
	// be acknowledged: the delta is durable in the old generation.
	for k := 3; k < 5; k++ {
		if err := admit(st, "s1", monitorDelta("mon", k)); err != nil {
			t.Fatalf("delta %d during failing compaction: %v", k, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "s1", "snap-1.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("snap-1.json exists despite ENOSPC (stat err %v)", err)
	}

	// Space frees; the next commit's compaction rotates the generation
	// and retires the old one.
	in.Reset()
	if err := admit(st, "s1", monitorDelta("mon", 5)); err != nil {
		t.Fatalf("delta 5 after space freed: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "s1", "snap-1.json")); err != nil {
		t.Fatalf("generation 1 snapshot missing after successful compaction: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "s1", "snap-0.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("generation 0 snapshot not retired (stat err %v)", err)
	}

	var deltas []hydrac.Delta
	for k := 0; k < 6; k++ {
		deltas = append(deltas, monitorDelta("mon", k))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir, a, store.Options{ProbeEvery: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got, want := storeSet(t, st2, "s1"), controlSet(t, a, deltas); !bytes.Equal(got, want) {
		t.Fatal("recovery after ENOSPC'd compaction diverged from control")
	}
}

// Abrupt death under concurrent load — the store is abandoned without
// Close while sessions commit in parallel and one WAL append lands
// torn — must lose no acknowledged delta: a fresh store over the same
// directory recovers every session bit-identical to a control replay
// of exactly its acknowledged history.
func TestKillUnderLoadLosesNoAckedDeltas(t *testing.T) {
	dir := t.TempDir()
	a := newAnalyzer(t)
	in := faultfs.Wrap(nil)
	st, err := store.Open(dir, a, store.Options{FS: in, ProbeEvery: -1, CompactEvery: 16, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately NOT closed: the "kill" is abandoning it mid-flight.
	ctx := context.Background()

	const sessions = 4
	ids := make([]string, sessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("s%d", i)
		if _, err := st.Create(ctx, ids[i], base()); err != nil {
			t.Fatal(err)
		}
	}

	acked := make([][]hydrac.Delta, sessions)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prefix := fmt.Sprintf("w%d-", i)
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				d := monitorDelta(prefix, k)
				if err := admit(st, ids[i], d); err != nil {
					// A torn write degraded this session: its commit
					// was aborted and never acknowledged. Stop here.
					if !errors.Is(err, store.ErrStorage) {
						t.Errorf("worker %d delta %d: unexpected error %v", i, k, err)
					}
					return
				}
				acked[i] = append(acked[i], d)
			}
		}(i)
	}
	// Let load build, then tear one WAL append in half mid-frame.
	time.Sleep(50 * time.Millisecond)
	in.Fail(faultfs.Rule{Op: faultfs.OpWrite, Path: ".wal", Nth: 1, Torn: true})
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	total := 0
	for i := range acked {
		total += len(acked[i])
	}
	if total == 0 {
		t.Fatal("no deltas were acknowledged; the scenario exercised nothing")
	}
	if n := in.Count(faultfs.OpWrite); n == 0 {
		t.Fatal("no WAL writes observed by the injector")
	}

	// "kill -9": no Close, no flush — reopen straight from disk.
	st2, err := store.Open(dir, a, store.Options{ProbeEvery: -1, Logf: t.Logf})
	if err != nil {
		t.Fatalf("recovery after abrupt kill: %v", err)
	}
	defer st2.Close()
	if st2.Len() != sessions {
		t.Fatalf("recovered %d sessions, want %d", st2.Len(), sessions)
	}
	for i, id := range ids {
		got := storeSet(t, st2, id)
		want := controlSet(t, a, acked[i])
		if !bytes.Equal(got, want) {
			t.Errorf("session %s: recovered state diverged from its %d acknowledged deltas", id, len(acked[i]))
		}
	}
}

// A degraded session must stay degraded across eviction pressure and
// repeated probe failures while the disk is still sick, and the error
// must keep naming the original fault.
func TestProbeKeepsFailingWhileDiskIsSick(t *testing.T) {
	dir := t.TempDir()
	a := newAnalyzer(t)
	in := faultfs.Wrap(nil)
	st, err := store.Open(dir, a, store.Options{FS: in, ProbeEvery: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx := context.Background()
	if _, err := st.Create(ctx, "s1", base()); err != nil {
		t.Fatal(err)
	}
	if err := admit(st, "s1", monitorDelta("mon", 0)); err != nil {
		t.Fatal(err)
	}

	// Appends fail from here on (sync keeps failing), so the first
	// commit degrades the session and probes cannot re-open the WAL
	// while the rule stands... except probing only re-opens, it does
	// not sync — so block the open path too.
	in.Fail(faultfs.Rule{Op: faultfs.OpSync, Path: ".wal"})
	in.Fail(faultfs.Rule{Op: faultfs.OpOpen, Path: ".wal"})
	if err := admit(st, "s1", monitorDelta("mon", 1)); !errors.Is(err, store.ErrStorage) {
		t.Fatalf("err = %v, want ErrStorage", err)
	}
	for round := 0; round < 3; round++ {
		rearmed, degraded := st.Probe(ctx)
		if rearmed != 0 || degraded != 1 {
			t.Fatalf("probe round %d = (%d, %d), want (0, 1)", round, rearmed, degraded)
		}
	}
	// Failed probes must not tear down the readable state: the old
	// session keeps serving reads while the disk is sick.
	if got, want := storeSet(t, st, "s1"), controlSet(t, a, []hydrac.Delta{monitorDelta("mon", 0)}); !bytes.Equal(got, want) {
		t.Fatal("reads broke while probes were failing")
	}
	if err := admit(st, "s1", monitorDelta("mon", 2)); !errors.Is(err, store.ErrDegraded) ||
		!strings.Contains(err.Error(), "WAL append failed") {
		t.Fatalf("err = %v, want ErrDegraded naming the original WAL append fault", err)
	}

	// Disk heals; the next probe re-arms and state matches control.
	in.Reset()
	if rearmed, degraded := st.Probe(ctx); rearmed != 1 || degraded != 0 {
		t.Fatalf("probe after heal = (%d, %d), want (1, 0)", rearmed, degraded)
	}
	if got, want := storeSet(t, st, "s1"), controlSet(t, a, []hydrac.Delta{monitorDelta("mon", 0)}); !bytes.Equal(got, want) {
		t.Fatal("re-armed session diverged from control")
	}
}
