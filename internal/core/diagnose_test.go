package core

import (
	"strings"
	"testing"

	"hydrac/internal/task"
)

func TestDiagnoseRover(t *testing.T) {
	ts := roverLikeSet()
	res, err := SelectPeriods(ts, Options{})
	if err != nil || !res.Schedulable {
		t.Fatal(err)
	}
	diags, err := Diagnose(ts, res.Periods, Dominance)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != len(ts.Security) {
		t.Fatalf("got %d diagnoses", len(diags))
	}
	for i, d := range diags {
		if d.Task != ts.Security[i].Name {
			t.Errorf("diagnosis %d for %s, want %s", i, d.Task, ts.Security[i].Name)
		}
		if !d.Schedulable {
			t.Errorf("%s reported unschedulable in a schedulable set", d.Task)
		}
		// The diagnosed response must agree with SelectPeriods' final
		// response times.
		if d.Resp != res.Resp[i] {
			t.Errorf("%s: diagnosed R=%d, selected R=%d", d.Task, d.Resp, res.Resp[i])
		}
		// The fixed point must reconstruct from the reported Ω.
		if got := d.Omega/2 + ts.Security[i].WCET; got != d.Resp {
			t.Errorf("%s: ⌊Ω/M⌋+C = %d, want R = %d", d.Task, got, d.Resp)
		}
		// Term interferences sum to Ω.
		var sum task.Time
		for _, term := range d.Terms {
			sum += term.Interference
		}
		if sum != d.Omega {
			t.Errorf("%s: terms sum to %d, Ω = %d", d.Task, sum, d.Omega)
		}
	}
	// The lower-priority task must see a security hp term.
	low := diags[indexByName(ts.Security, "tripwire")]
	foundSec := false
	for _, term := range low.Terms {
		if strings.Contains(term.Source, "security hp") {
			foundSec = true
		}
	}
	if !foundSec {
		t.Error("tripwire diagnosis lacks the kmod interference term")
	}
	if out := low.Render(); !strings.Contains(out, "tripwire") || !strings.Contains(out, "interference") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestDiagnoseUnschedulable(t *testing.T) {
	ts := roverLikeSet()
	for i := range ts.Security {
		ts.Security[i].MaxPeriod = 5400
	}
	periods := []task.Time{5400, 5400}
	diags, err := Diagnose(ts, periods, Dominance)
	if err != nil {
		t.Fatal(err)
	}
	bad := diags[indexByName(ts.Security, "tripwire")]
	if bad.Schedulable {
		t.Fatal("tripwire diagnosed schedulable with Tmax 5400")
	}
	if !strings.Contains(bad.Render(), "UNSCHEDULABLE") {
		t.Error("render hides the verdict")
	}
	if len(bad.Terms) == 0 {
		t.Error("no interference terms for the rejected task")
	}
}

func TestDiagnoseValidation(t *testing.T) {
	ts := roverLikeSet()
	if _, err := Diagnose(ts, []task.Time{1}, Dominance); err == nil {
		t.Error("period-count mismatch accepted")
	}
}
