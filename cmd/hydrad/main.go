// Command hydrad serves the HYDRA-C admission-control pipeline over
// HTTP: clients POST task sets (the same JSON schema cmd/hydrac
// reads) and receive versioned analysis reports. One long-lived
// hydrac.Analyzer backs every request, so the report cache is shared
// across clients — repeated admission checks of the same workload are
// served from memory.
//
// Usage:
//
//	hydrad [-addr HOST:PORT] [-cache N] [-heuristic H]
//	       [-baselines hydra,global-tmax,...] [-sim-horizon N] [-sim-seed S]
//	       [-pprof HOST:PORT]
//
// -pprof exposes net/http/pprof on a SEPARATE listener restricted to
// loopback addresses (off by default), so production hot spots can be
// profiled in place without ever exposing the profiler alongside the
// service API:
//
//	hydrad -addr :8080 -pprof 127.0.0.1:6060 &
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
//
// Endpoints:
//
//	POST /v1/analyze             one task set in, one report envelope out
//	POST /v1/analyze/batch       {"task_sets": [...]} in, a reports envelope out
//	POST /v1/session             open an incremental admission session on a base set
//	GET  /v1/session/{id}        the session's current (placed) task set
//	POST /v1/session/{id}/admit  apply one delta; the report envelope describes the result
//	GET  /healthz                liveness + configuration summary
//
// Errors are JSON ({"error": "..."}): 400 for malformed or invalid
// input, 404 for unknown sessions, 405 for wrong methods, 413 for
// oversized bodies, 422 for sets or deltas the pipeline rejects (an
// RT band that is infeasible under Eq. 1 or that no heuristic can
// place, a delta naming an unknown task). An unschedulable *security*
// band is NOT an error — the report says so; on the admit endpoint a
// "schedulable": false report means the delta was DENIED and the
// session state is unchanged (removal-only deltas always commit).
//
// Sessions live in a fixed-capacity LRU (-sessions); the least
// recently used session is evicted when a new one would exceed it,
// and later requests against it answer 404.
package main

import (
	"bytes"
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"hydrac"
	"hydrac/internal/lru"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// maxBodyBytes bounds request bodies; the largest paper-scale task
// sets encode to a few kilobytes, so a megabyte leaves two orders of
// magnitude of headroom while keeping hostile payloads cheap.
const maxBodyBytes = 1 << 20

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hydrad", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this loopback address (e.g. 127.0.0.1:6060); empty disables")
	cacheSize := fs.Int("cache", 1024, "report cache entries (0 disables)")
	sessions := fs.Int("sessions", 256, "live admission sessions kept (LRU eviction)")
	heuristic := fs.String("heuristic", "best-fit", "partitioning heuristic: best-fit | first-fit | worst-fit | next-fit")
	baselines := fs.String("baselines", "", "comma-separated baseline schemes to attach to every report (hydra, hydra-aggressive, hydra-tmax, global-tmax)")
	simHorizon := fs.Int64("sim-horizon", 0, "when positive, simulate every admitted set for this many ticks")
	simSeed := fs.Int64("sim-seed", 0, "seed for the simulation's jitter/variation randomness")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "hydrad: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	a, summary, err := buildAnalyzer(*cacheSize, *heuristic, *baselines, *simHorizon, *simSeed)
	if err != nil {
		fmt.Fprintln(stderr, "hydrad:", err)
		return 2
	}
	summary["sessions"] = *sessions

	if *pprofAddr != "" {
		pln, err := listenPprof(*pprofAddr)
		if err != nil {
			fmt.Fprintln(stderr, "hydrad:", err)
			return 1
		}
		defer pln.Close()
		// A dedicated server on a dedicated loopback listener: the
		// profiling surface never shares a port (or a handler) with
		// the service API, so exposing the service does not expose
		// the profiler.
		go func() {
			psrv := &http.Server{Handler: pprofHandler(), ReadHeaderTimeout: 10 * time.Second}
			_ = psrv.Serve(pln)
		}()
		fmt.Fprintf(stderr, "hydrad: pprof on http://%s/debug/pprof/\n", pln.Addr())
		summary["pprof"] = pln.Addr().String()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "hydrad:", err)
		return 1
	}
	srv := &http.Server{
		Handler:           newHandler(a, summary, *sessions, *cacheSize),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(stderr, "hydrad: listening on %s\n", ln.Addr())

	select {
	case <-ctx.Done():
		fmt.Fprintln(stderr, "hydrad: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(stderr, "hydrad:", err)
			return 1
		}
		return 0
	case err := <-errc:
		fmt.Fprintln(stderr, "hydrad:", err)
		return 1
	}
}

// buildAnalyzer translates flags into Analyzer options and a summary
// for /healthz.
func buildAnalyzer(cacheSize int, heuristic, baselines string, simHorizon, simSeed int64) (*hydrac.Analyzer, map[string]any, error) {
	var opts []hydrac.AnalyzerOption
	summary := map[string]any{
		"cache":     cacheSize,
		"heuristic": heuristic,
	}
	h, err := hydrac.ParseHeuristic(heuristic)
	if err != nil {
		return nil, nil, err
	}
	opts = append(opts, hydrac.WithHeuristic(h), hydrac.WithCache(cacheSize))
	if baselines != "" {
		var schemes []hydrac.Scheme
		for _, name := range strings.Split(baselines, ",") {
			sch, err := hydrac.ParseScheme(strings.TrimSpace(name))
			if err != nil {
				return nil, nil, err
			}
			schemes = append(schemes, sch)
		}
		opts = append(opts, hydrac.WithBaselines(schemes...))
		summary["baselines"] = schemes
	}
	if simHorizon > 0 {
		opts = append(opts, hydrac.WithSimulation(hydrac.SimConfig{
			Policy: hydrac.SemiPartitioned, Horizon: simHorizon, Seed: simSeed,
		}))
		summary["sim_horizon"] = simHorizon
	}
	a, err := hydrac.New(opts...)
	if err != nil {
		return nil, nil, err
	}
	return a, summary, nil
}

// server carries the shared analyzer behind the HTTP surface.
type server struct {
	analyzer *hydrac.Analyzer
	summary  map[string]any
	// sessions is sharded by session-id hash: ids are random hex, so
	// concurrent sessions spread across shard locks instead of
	// serialising on one store mutex per request.
	sessions *lru.Sharded[*hydrac.Session]
	// respCache short-circuits exact-byte duplicate /v1/analyze
	// requests: body digest → the canonical cache-hit envelope bytes.
	// A hit costs one digest and one Write — no task-set decode, no
	// report marshal. Entries are only ever populated from analyzer
	// cache hits, so the replayed bytes are the canonical envelope
	// (FromCache true, no per-call Timing), which is identical for
	// every duplicate of those bytes; analysis is deterministic, so
	// entries never go stale.
	respCache *lru.Cache[[sha256.Size]byte, []byte]
}

// sessionShards spreads the session store's locking; 16 shards keeps
// contention negligible up to hundreds of concurrent sessions while
// costing nothing at -sessions values this small.
const sessionShards = 16

// newHandler wires the routes; separated from run so tests can mount
// it on httptest servers. maxSessions bounds the live session store
// (sharded LRU eviction; 0 disables the session endpoints) and
// cacheSize the duplicate-request byte cache (0 disables it, matching
// a cacheless analyzer where replayable hit envelopes never exist).
func newHandler(a *hydrac.Analyzer, summary map[string]any, maxSessions, cacheSize int) http.Handler {
	s := &server{
		analyzer:  a,
		summary:   summary,
		sessions:  lru.NewSharded[*hydrac.Session](maxSessions, sessionShards),
		respCache: lru.New[[sha256.Size]byte, []byte](cacheSize),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", s.analyze)
	mux.HandleFunc("/v1/analyze/batch", s.analyzeBatch)
	mux.HandleFunc("/v1/session", s.sessionCreate)
	mux.HandleFunc("/v1/session/", s.sessionRoute)
	mux.HandleFunc("/healthz", s.healthz)
	return mux
}

// bodyPool recycles request read buffers: every handler slurps the
// (bounded) body once, decodes from the buffer, and returns it, so
// steady-state traffic stops allocating per-request scratch space.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// readBody reads the whole (size-capped) request body into a pooled
// buffer. The caller must putBody the buffer when done with its
// bytes.
func readBody(w http.ResponseWriter, r *http.Request) (*bytes.Buffer, error) {
	buf := bodyPool.Get().(*bytes.Buffer)
	buf.Reset()
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, maxBodyBytes)); err != nil {
		bodyPool.Put(buf)
		return nil, err
	}
	return buf, nil
}

func putBody(buf *bytes.Buffer) { bodyPool.Put(buf) }

// listenPprof opens the profiling listener, refusing any address that
// is not loopback: pprof exposes heap contents and CPU samples, so it
// must never ride on an externally reachable interface by accident.
func listenPprof(addr string) (net.Listener, error) {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("-pprof %q: %w", addr, err)
	}
	if host != "localhost" {
		ip := net.ParseIP(host)
		if ip == nil || !ip.IsLoopback() {
			return nil, fmt.Errorf("-pprof %q: profiling must stay on a loopback address (127.0.0.1, ::1 or localhost)", addr)
		}
	}
	return net.Listen("tcp", addr)
}

// pprofHandler mounts the net/http/pprof endpoints on a fresh mux (the
// package's side-effect registration targets http.DefaultServeMux,
// which hydrad never serves).
func pprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", netpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	return mux
}

// batchRequest is the body of POST /v1/analyze/batch. Each element is
// one task set in the standard file schema.
type batchRequest struct {
	TaskSets []json.RawMessage `json:"task_sets"`
}

func (s *server) analyze(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	buf, err := readBody(w, r)
	if err != nil {
		writeError(w, badRequestStatus(err), err)
		return
	}
	defer putBody(buf)

	// Exact-byte duplicate of a previously analysed request: one
	// digest, one Write. Admission-control traffic is dominated by
	// re-posts of the same deployment manifest, so this is the
	// steady-state path.
	var key [sha256.Size]byte
	if s.respCache != nil {
		key = sha256.Sum256(buf.Bytes())
		if body, ok := s.respCache.Get(key); ok {
			w.Header().Set("Content-Type", "application/json")
			w.Write(body)
			return
		}
	}

	ts, err := hydrac.DecodeTaskSet(bytes.NewReader(buf.Bytes()))
	if err != nil {
		writeError(w, badRequestStatus(err), err)
		return
	}
	body, fromCache, err := s.analyzer.AnalyzeEnvelope(r.Context(), ts)
	if err != nil {
		writeAnalysisError(w, r, err)
		return
	}
	if s.respCache != nil && fromCache {
		// Only hit envelopes are replayable: they carry no per-call
		// Timing, so every future duplicate of these bytes gets the
		// identical response.
		s.respCache.Add(key, body)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

func (s *server) analyzeBatch(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	buf, err := readBody(w, r)
	if err != nil {
		writeError(w, badRequestStatus(err), err)
		return
	}
	defer putBody(buf)
	var req batchRequest
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, badRequestStatus(err), fmt.Errorf("decoding batch request: %w", err))
		return
	}
	if len(req.TaskSets) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("batch request carries no task sets"))
		return
	}
	sets := make([]*hydrac.TaskSet, len(req.TaskSets))
	for i, raw := range req.TaskSets {
		ts, err := hydrac.DecodeTaskSet(bytes.NewReader(raw))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("task set %d: %w", i, err))
			return
		}
		sets[i] = ts
	}
	reps, err := s.analyzer.AnalyzeBatch(r.Context(), sets)
	if err != nil {
		writeAnalysisError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	hydrac.WriteReports(w, reps)
}

// sessionCreateResponse is the body of a successful POST /v1/session:
// the standard report envelope fields plus the session id.
type sessionCreateResponse struct {
	Version   int            `json:"version"`
	SessionID string         `json:"session_id"`
	Report    *hydrac.Report `json:"report"`
}

func (s *server) sessionCreate(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	if s.sessions == nil {
		// -sessions 0: the store never retains anything, so handing
		// out a session id would be a dead credential.
		writeError(w, http.StatusNotFound, errors.New("sessions are disabled on this daemon (-sessions 0)"))
		return
	}
	buf, err := readBody(w, r)
	if err != nil {
		writeError(w, badRequestStatus(err), err)
		return
	}
	ts, err := hydrac.DecodeTaskSet(bytes.NewReader(buf.Bytes()))
	putBody(buf)
	if err != nil {
		writeError(w, badRequestStatus(err), err)
		return
	}
	sess, rep, err := s.analyzer.NewSession(r.Context(), ts)
	if err != nil {
		writeAnalysisError(w, r, err)
		return
	}
	id, err := newSessionID()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.sessions.Add(id, sess)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(sessionCreateResponse{Version: hydrac.ReportVersion, SessionID: id, Report: rep})
}

// sessionRoute dispatches /v1/session/{id} and /v1/session/{id}/admit.
func (s *server) sessionRoute(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/session/")
	id, op, _ := strings.Cut(rest, "/")
	sess, ok := s.sessions.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q (expired, evicted, or never created)", id))
		return
	}
	switch op {
	case "":
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		hydrac.EncodeTaskSet(w, sess.Set())
	case "admit":
		if !requirePost(w, r) {
			return
		}
		buf, err := readBody(w, r)
		if err != nil {
			writeError(w, badRequestStatus(err), err)
			return
		}
		d, err := hydrac.DecodeDelta(bytes.NewReader(buf.Bytes()))
		putBody(buf)
		if err != nil {
			writeError(w, badRequestStatus(err), err)
			return
		}
		rep, admitted, err := sess.Admit(r.Context(), *d)
		if err != nil {
			writeAnalysisError(w, r, err)
			return
		}
		// The envelope must stay byte-identical to a cold analysis of
		// the same set, so the commit verdict travels in a header.
		w.Header().Set("X-Hydra-Admitted", fmt.Sprintf("%v", admitted))
		w.Header().Set("Content-Type", "application/json")
		hydrac.WriteReport(w, rep)
	default:
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown session operation %q", op))
	}
}

// newSessionID draws a 128-bit random id.
func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("generating session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":         "ok",
		"report_version": hydrac.ReportVersion,
		"config":         s.summary,
	})
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method == http.MethodPost {
		return true
	}
	w.Header().Set("Allow", http.MethodPost)
	writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	return false
}

// writeAnalysisError maps pipeline failures: a dead client context is
// not worth a response, everything else is the client's input.
func writeAnalysisError(w http.ResponseWriter, r *http.Request, err error) {
	if r.Context().Err() != nil {
		return // the client hung up; the analysis was shed
	}
	writeError(w, http.StatusUnprocessableEntity, err)
}

// badRequestStatus distinguishes an oversized body (413) from plain
// bad input (400).
func badRequestStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
