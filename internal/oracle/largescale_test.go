package oracle_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"hydrac/internal/admit"
	"hydrac/internal/core"
	"hydrac/internal/gen"
	"hydrac/internal/oracle"
	"hydrac/internal/partition"
	"hydrac/internal/task"
)

// largeBandConfig draws paper-shaped sets (Table 3 period ranges at
// 10 ticks/ms) with fixed per-core task counts, so n scales exactly
// with M.
func largeBandConfig(cores, rtPer, secPer int) gen.Config {
	return gen.Config{
		Cores:           cores,
		RTTasksMin:      rtPer * cores,
		RTTasksMax:      rtPer * cores,
		SecTasksMin:     secPer * cores,
		SecTasksMax:     secPer * cores,
		RTPeriodMin:     10,
		RTPeriodMax:     1000,
		SecMaxPeriodMin: 1500,
		SecMaxPeriodMax: 3000,
		SecurityShare:   0.30,
		Groups:          10,
		SetsPerGroup:    1,
		Partition:       partition.BestFit,
		MaxAttempts:     40,
		TicksPerMS:      10,
	}
}

// TestDifferentialLargeN is the large-n band: n ∈ {~500, ~1000, ~2000}
// total tasks on M ∈ {64, 128} cores, at one set per (size, group)
// cell instead of the small-set suite's hundreds. Every cell asserts
// the optimized kernel against naive from-scratch recomputation
// (oracle.VerifySelection: verdict at Tmax, bit-identical response
// vector, per-level minimality probes); the smallest cell additionally
// runs the full binary-search oracle end to end, and one cell replays
// the tail of the security band through the incremental admission
// engine. The creep oracle itself is O(n·Tmax) probes and stays on the
// small-set corpus — its equivalence to the binary-search oracle is
// established there.
//
// The band costs tens of seconds on one core and is skipped in -short
// runs; tier-1 keeps the small-set differential suite.
func TestDifferentialLargeN(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n differential band: expensive; run without -short")
	}
	const seedBase = 20260807
	ctx := context.Background()
	cells := []struct {
		cores, rtPer, secPer int
		group                int
		stride               int  // VerifySelection minimality sampling
		fullOracle           bool // run oracle.SelectPeriodsLog end to end
		deltaTail            int  // security tasks to replay through admit
	}{
		{64, 5, 3, 3, 1, true, 0},     // n=512, mid utilisation
		{64, 5, 3, 8, 1, true, 0},     // n=512, near overload
		{64, 10, 6, 3, 8, false, 2},   // n=1024
		{128, 5, 3, 4, 8, false, 0},   // n=1024, wide machine
		{128, 10, 6, 4, 16, false, 2}, // n=2048
		{128, 10, 6, 8, 16, false, 0}, // n=2048, near overload
	}
	var sched, unsched atomic.Int32
	// The cells are independent draws; running them parallel keeps the
	// band's wall time near its slowest cell on multi-core CI runners
	// (the race-detector run has no -short escape hatch).
	t.Run("cells", func(t *testing.T) {
		for _, c := range cells {
			c := c
			name := fmt.Sprintf("M%d-n%d-g%d", c.cores, (c.rtPer+c.secPer)*c.cores, c.group)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				cfg := largeBandConfig(c.cores, c.rtPer, c.secPer)
				var ts *task.Set
				var err error
				for i := 0; i < 5; i++ {
					if ts, err = cfg.GenerateAt(seedBase, c.group, i); err == nil {
						break
					}
				}
				if err != nil {
					// The top utilisation groups legitimately have no
					// partitionable draws at some sizes.
					t.Skipf("no partitionable draw: %v", err)
				}
				n := len(ts.RT) + len(ts.Security)
				t0 := time.Now()
				cold, err := core.SelectPeriods(ts, core.Options{})
				if err != nil {
					t.Fatalf("n=%d: cold selection failed: %v", n, err)
				}
				coldDur := time.Since(t0)
				if cold.Schedulable {
					sched.Add(1)
				} else {
					unsched.Add(1)
				}
				t0 = time.Now()
				if err := oracle.VerifySelection(ts, cold.Schedulable, cold.Periods, cold.Resp, c.stride); err != nil {
					t.Fatalf("n=%d: kernel disagrees with from-scratch recomputation: %v", n, err)
				}
				verifyDur := time.Since(t0)
				oraDur := time.Duration(0)
				if c.fullOracle {
					t0 = time.Now()
					ora, err := oracle.SelectPeriodsLog(ts)
					if err != nil {
						t.Fatalf("n=%d: binary-search oracle failed: %v", n, err)
					}
					sameResult(t, "large-n binary-search oracle", cold, ora.Schedulable, ora.Periods, ora.Resp)
					oraDur = time.Since(t0)
				}
				if c.deltaTail > 0 && cold.Schedulable {
					replayTail(t, ctx, ts, cold, c.deltaTail)
				}
				t.Logf("n=%d sched=%v: cold=%v verify=%v oracle=%v",
					n, cold.Schedulable, coldDur, verifyDur, oraDur)
			})
		}
	})
	if sched.Load() == 0 || unsched.Load() == 0 {
		t.Fatalf("band verdicts degenerate: %d schedulable, %d unschedulable — both paths must be exercised", sched.Load(), unsched.Load())
	}
}

// replayTail admits the last `tail` security tasks one at a time into
// an engine seeded with the rest of the set, asserting each
// intermediate result against a cold analysis — the large-n version of
// incrementalReplay, kept to the tail so each step's cold reference
// stays affordable.
func replayTail(t *testing.T, ctx context.Context, ts *task.Set, cold *core.Result, tail int) {
	t.Helper()
	if tail > len(ts.Security) {
		tail = len(ts.Security)
	}
	head := ts.Clone()
	head.Security = head.Security[:len(head.Security)-tail]
	eng, _, err := admit.New(ctx, head, admit.Config{})
	if err != nil {
		t.Fatalf("engine rejected the head set: %v", err)
	}
	for k := len(ts.Security) - tail; k < len(ts.Security); k++ {
		s := ts.Security[k]
		t0 := time.Now()
		out, err := eng.Apply(ctx, task.Delta{AddSecurity: []task.SecurityTask{s}})
		if err != nil {
			t.Fatalf("admitting %s: %v", s.Name, err)
		}
		deltaDur := time.Since(t0)
		stepCold, err := core.SelectPeriods(out.Set, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "large-n incremental step", stepCold, out.Result.Schedulable, out.Result.Periods, out.Result.Resp)
		t.Logf("  delta admit %s: %v (n=%d)", s.Name, deltaDur, len(out.Set.RT)+len(out.Set.Security))
		if !out.Admitted {
			if cold.Schedulable {
				t.Fatalf("prefix through %s denied but the full set is schedulable", s.Name)
			}
			return
		}
	}
}
